"""Recombining sharded sweep partials into one canonical SweepResult payload.

``repro sweep --shard i/N`` emits a *partial* sweep payload: the frozen
schema-v1 shape plus an additive ``shard`` block carrying the shard
index/count and the **full** grid key sequence (every shard knows the
whole grid; it just ran its own subset).  :func:`merge_sweep_payloads`
recombines a complete set of partials into the exact payload the
unsharded sweep would have produced -- byte-identical under a canonical
JSON dump -- by walking the full grid order and pulling each position's
entry from whichever shard owns its key.

Merging is deliberately pure dict work (no result objects, no simulator
imports): inputs are parsed JSON payloads or journals, the output is a
plain dict ready for ``json.dumps``.  Every inconsistency is refused
loudly with a :exc:`MergeError` -- partials from different grids
(``sweep_id``/grid-digest mismatch), overlapping or missing shard
indices, and grid points no shard accounts for -- because a silent
partial merge would forge a result no real sweep ever computed.

Inputs can be result JSON files (``repro sweep --shard i/N --json``) or
the shards' journals (``<cache-dir>/sweeps/<journal-id>/journal.jsonl``)
-- :func:`load_partial` detects which and :func:`journal_to_partial_payload`
reconstructs a partial from journal records alone, so a sweep that was
killed after journaling its last point still merges without re-running.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.dist.sharding import shard
from repro.exec.journal import JOURNAL_FILENAME, SweepJournal, content_digest


class MergeError(ValueError):
    """The partials cannot be merged into one canonical sweep result."""


def _shard_block(partial: Mapping[str, Any], where: str) -> Dict[str, Any]:
    block = partial.get("shard")
    if not isinstance(block, Mapping):
        raise MergeError(
            f"{where} is not a sharded sweep partial (no 'shard' block); "
            "produce partials with 'repro sweep --shard i/N'"
        )
    for key in ("index", "count", "parameter", "grid_keys"):
        if key not in block:
            raise MergeError(f"{where} shard block is missing {key!r}")
    return dict(block)


def merge_sweep_payloads(
    partials: Sequence[Mapping[str, Any]],
    *,
    sources: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Merge a complete set of shard partials into the unsharded payload.

    ``sources`` (optional, parallel to ``partials``) names each input in
    error messages.  The merged payload has no ``shard`` block and
    ``resumed_from: null`` -- exactly what one fresh unsharded sweep of
    the same grid emits.
    """
    if not partials:
        raise MergeError("nothing to merge: no partial sweep payloads given")
    names = list(sources) if sources is not None else [
        f"partial #{i}" for i in range(len(partials))
    ]
    if len(names) != len(partials):
        raise MergeError("sources must parallel partials")

    reference: Optional[Dict[str, Any]] = None
    ref_name = names[0]
    seen_indices: Dict[int, str] = {}
    entries_by_key: Dict[str, List[Dict[str, Any]]] = {}
    failures_by_key: Dict[str, Dict[str, Any]] = {}
    attempts_by_key: Dict[str, int] = {}

    for partial, name in zip(partials, names):
        if not isinstance(partial, Mapping):
            raise MergeError(f"{name} is not a sweep payload mapping")
        block = _shard_block(partial, name)
        identity = {
            "scenario": partial.get("scenario"),
            "sweep_id": partial.get("sweep_id"),
            "parameter": block["parameter"],
            "count": block["count"],
            "grid_keys": list(block["grid_keys"]),
        }
        if reference is None:
            reference = identity
            ref_name = name
            expected = content_digest(
                {
                    "scenario": identity["scenario"],
                    "parameter": identity["parameter"],
                    "points": identity["grid_keys"],
                }
            )
            if identity["sweep_id"] != expected:
                raise MergeError(
                    f"{name} is internally inconsistent: its sweep_id "
                    f"{identity['sweep_id']!r} does not match the digest of "
                    f"its own grid ({expected!r})"
                )
        elif identity != reference:
            for field in ("scenario", "parameter", "count"):
                if identity[field] != reference[field]:
                    raise MergeError(
                        f"refusing to merge: {name} has {field}="
                        f"{identity[field]!r} but {ref_name} has "
                        f"{reference[field]!r}"
                    )
            raise MergeError(
                f"refusing to merge: grid digest mismatch -- {name} was "
                f"produced for sweep {identity['sweep_id']!r} but {ref_name} "
                f"for {reference['sweep_id']!r}; shards of different grids "
                "cannot be recombined"
            )
        index = int(block["index"])
        count = int(block["count"])
        if not 0 <= index < count:
            raise MergeError(f"{name} has shard index {index} of {count}")
        if index in seen_indices:
            raise MergeError(
                f"overlapping shards: {name} and {seen_indices[index]} both "
                f"carry shard {index} of {count}"
            )
        seen_indices[index] = name

        for entry in partial.get("sweep", ()):
            key = entry.get("point_key")
            if not isinstance(key, str):
                raise MergeError(
                    f"{name} has a sweep entry without a point_key; only "
                    "supervised (journaled) sweeps can be sharded and merged"
                )
            entries_by_key.setdefault(key, []).append(dict(entry))
        for failure in partial.get("failed_points", ()):
            key = failure.get("point_key")
            if isinstance(key, str):
                failures_by_key.setdefault(key, dict(failure))
        for key, count_ in (partial.get("attempts") or {}).items():
            attempts_by_key[key] = int(count_)

    assert reference is not None
    total = int(reference["count"])
    missing = sorted(set(range(total)) - set(seen_indices))
    if missing:
        raise MergeError(
            f"incomplete merge: {len(seen_indices)} of {total} shards given; "
            f"missing shard indices {missing}"
        )

    grid_keys: List[str] = list(reference["grid_keys"])
    merged_points: List[Dict[str, Any]] = []
    merged_failures: List[Dict[str, Any]] = []
    unaccounted: List[str] = []
    for key in grid_keys:
        queue = entries_by_key.get(key)
        if queue:
            merged_points.append(queue.pop(0))
        elif key in failures_by_key:
            merged_failures.append(dict(failures_by_key[key]))
        else:
            unaccounted.append(key)
    if unaccounted:
        owners = sorted({shard(key, total) for key in unaccounted})
        raise MergeError(
            f"{len(unaccounted)} grid point(s) are neither completed nor "
            f"recorded as failed (first: {unaccounted[0]!r}); shard(s) "
            f"{owners} look interrupted -- resume them before merging"
        )
    leftovers = sum(len(queue) for queue in entries_by_key.values())
    if leftovers:
        raise MergeError(
            f"{leftovers} completed point(s) do not correspond to any grid "
            "position; the partials do not belong to this grid"
        )

    # Attempts in the unsharded payload's insertion order: completed
    # points in grid order, then failures in grid order.
    attempts: Dict[str, int] = {}
    for entry in merged_points:
        key = entry["point_key"]
        attempts[key] = attempts_by_key.get(key, 1)
    for failure in merged_failures:
        key = failure["point_key"]
        attempts[key] = attempts_by_key.get(
            key, int(failure.get("attempts", 1))
        )

    return {
        "schema_version": partials[0].get("schema_version", 1),
        "scenario": reference["scenario"],
        "sweep": merged_points,
        "sweep_id": reference["sweep_id"],
        "resumed_from": None,
        "attempts": attempts,
        "failed_points": merged_failures,
    }


def journal_to_partial_payload(path: Union[str, Path]) -> Dict[str, Any]:
    """Reconstruct a shard's partial payload from its journal alone.

    The journal header carries the full grid (keys *and* values) plus the
    shard assignment, and every completed point's payload is journaled
    verbatim, so the reconstruction is exactly the payload ``repro sweep
    --shard i/N --json`` would have written -- without re-running
    anything.  Raises :exc:`MergeError` on a missing or headerless
    journal.
    """
    journal = SweepJournal(path)
    if not journal.exists():
        raise MergeError(f"no sweep journal at {journal.path}")
    state = journal.read()
    header = state.header
    if header is None:
        raise MergeError(
            f"journal {journal.path} has no readable header record"
        )
    for key in ("sweep_id", "scenario", "parameter", "grid_keys", "grid_values"):
        if key not in header:
            raise MergeError(
                f"journal {journal.path} predates sharded sweeps (missing "
                f"header key {key!r}); re-run the sweep to produce a "
                "mergeable journal"
            )
    grid_keys = list(header["grid_keys"])
    grid_values = list(header["grid_values"])
    if len(grid_keys) != len(grid_values):
        raise MergeError(
            f"journal {journal.path} header is corrupt: "
            f"{len(grid_keys)} grid keys vs {len(grid_values)} values"
        )
    parameter = header["parameter"]
    index = int(header.get("shard_index", 0))
    count = int(header.get("shard_count", 1))

    points: List[Dict[str, Any]] = []
    failures: List[Dict[str, Any]] = []
    attempts: Dict[str, int] = {}
    for key, value in zip(grid_keys, grid_values):
        if count > 1 and shard(key, count) != index:
            continue
        if key in state.completed:
            record = state.completed[key]
            points.append(
                {
                    "parameter": parameter,
                    "value": value,
                    "point_key": key,
                    **record["payload"],
                }
            )
            attempts.setdefault(key, int(record.get("attempts", 1)))
        elif key in state.failed:
            record = state.failed[key]
            failures.append(
                {
                    "parameter": parameter,
                    "value": value,
                    "point_key": key,
                    "attempts": int(record.get("attempts", 1)),
                    "kind": str(record.get("kind", "unknown")),
                    "error_type": str(record.get("error_type", "unknown")),
                    "message": str(record.get("message", "")),
                }
            )
            attempts.setdefault(key, int(record.get("attempts", 1)))
    return {
        "schema_version": 1,
        "scenario": header["scenario"],
        "sweep": points,
        "sweep_id": header["sweep_id"],
        "resumed_from": None,
        "attempts": attempts,
        "failed_points": failures,
        "shard": {
            "index": index,
            "count": count,
            "parameter": parameter,
            "grid_keys": grid_keys,
        },
    }


def load_partial(path: Union[str, Path]) -> Dict[str, Any]:
    """Load one merge input: a partial result JSON, a journal, or its dir."""
    path = Path(path)
    if path.is_dir():
        return journal_to_partial_payload(path / JOURNAL_FILENAME)
    if path.suffix == ".jsonl" or path.name == JOURNAL_FILENAME:
        return journal_to_partial_payload(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise MergeError(f"no such merge input: {path}") from None
    except ValueError as exc:
        raise MergeError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise MergeError(f"{path} does not contain a sweep payload object")
    return payload

"""Typed, versioned results of the :class:`repro.api.Experiment` facade.

Every result type serialises through ``to_dict()`` into a payload carrying
``schema_version``; the shapes are **frozen as schema v1** (the exact JSON
the CLI emitted before the payloads were versioned, plus the version
marker) and structurally checked by :mod:`repro.api.schema`.  Downstream
consumers can therefore parse the payloads without importing this
package, and future shape changes must bump the version instead of
silently breaking them.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.sim.multi_tenant import MultiTenantResult, TenantResult
from repro.sim.scenario import ScenarioSpec
from repro.utils.tables import Table

#: Version stamped into every ``to_dict()`` payload.  Bump only with a
#: deliberate, documented schema change.
SCHEMA_VERSION = 1


def environment_block(kernel_backend: str) -> Dict[str, str]:
    """The additive ``environment`` payload block.

    Records what is needed to interpret a result or benchmark number
    away from the machine that produced it: the kernel event-queue
    backend it ran under and the python/numpy versions.  The block is
    schema-v1-additive -- it never feeds :func:`result_digest`, which
    hashes only the simulation core.
    """
    return {
        "kernel_backend": kernel_backend,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
    }


def result_digest(core_payload: Mapping[str, Any]) -> str:
    """The canonical 16-hex digest of a simulation-outcome payload.

    Hashes the *simulation core* only -- the un-versioned
    ``MultiTenantResult.to_dict()`` shape with no timings -- so digests
    are comparable across the facade, the CLI, the deprecated shims and
    the historical golden files, and never depend on wall-clock noise.
    """
    text = json.dumps(core_payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one :meth:`repro.api.Experiment.run`.

    Wraps the raw :class:`~repro.sim.multi_tenant.MultiTenantResult`
    (available as ``.raw`` for full access to per-tenant schedulers) and
    adds the scenario identity, the versioned serialization and the
    canonical digest.
    """

    scenario: str
    spec: ScenarioSpec
    raw: MultiTenantResult

    # -- delegated conveniences ----------------------------------------------------

    @property
    def horizon_seconds(self) -> float:
        return self.raw.horizon_seconds

    @property
    def tenants(self) -> Mapping[str, TenantResult]:
        return self.raw.tenants

    @property
    def aggregate(self):
        return self.raw.aggregate

    @property
    def num_devices(self) -> int:
        return self.raw.num_devices

    @property
    def fill_tflops_per_device(self) -> float:
        return self.raw.fill_tflops_per_device

    @property
    def backlog_remaining(self) -> int:
        return self.raw.backlog_remaining

    @property
    def events_processed(self) -> int:
        return self.raw.events_processed

    @property
    def events_by_kind(self) -> Mapping[str, int]:
        return self.raw.events_by_kind

    @property
    def timings_by_kind(self) -> Mapping[str, float]:
        return self.raw.timings_by_kind

    def summary_table(self) -> Table:
        """Per-tenant rows plus an aggregate row, ready for printing."""
        return self.raw.summary_table()

    # -- serialization -------------------------------------------------------------

    def to_dict(self, *, include_timings: bool = False) -> Dict[str, Any]:
        """Schema-v1 run payload (see ``docs/api.md`` for the reference)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "scenario": self.scenario,
            "environment": environment_block(self.spec.kernel_backend),
            **self.raw.to_dict(include_timings=include_timings),
        }

    def digest(self) -> str:
        """Canonical digest of the simulation outcome (timing-free)."""
        return result_digest(self.raw.to_dict())


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a sweep: the override applied and its outcome.

    ``payload`` is the point's simulation-core dict (the un-versioned
    ``MultiTenantResult.to_dict()`` shape; points cross process
    boundaries, so the full result object stays in the worker).
    """

    parameter: str
    value: Any
    payload: Mapping[str, Any]
    #: Content digest of the point's applied scenario document -- the
    #: journal key.  ``None`` on payloads built outside the supervised
    #: runtime (hand-constructed results, legacy callers).
    key: Optional[str] = None
    #: Supervised attempts this point took (1 = first try succeeded).
    attempts: int = 1

    @property
    def aggregate(self) -> Mapping[str, Any]:
        return self.payload["aggregate"]

    def digest(self) -> str:
        return result_digest(dict(self.payload))


@dataclass(frozen=True)
class PointFailure:
    """A grid point that exhausted its retry budget.

    Failures are *recorded*, not raised: a sweep with failed points still
    returns every completed point, and the failure carries everything
    needed to triage (the failure ``kind`` -- ``exception`` / ``crash`` /
    ``timeout`` -- the error type and message, the attempt count and the
    journal ``key`` to re-attempt via ``--resume``).
    """

    parameter: str
    value: Any
    key: str
    attempts: int
    kind: str
    error_type: str
    message: str

    def describe(self) -> str:
        return (
            f"{self.parameter}={self.value}: [{self.kind}] "
            f"{self.error_type}: {self.message} "
            f"({self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "parameter": self.parameter,
            "value": self.value,
            "point_key": self.key,
            "attempts": self.attempts,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
        }


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one :meth:`repro.api.Experiment.sweep`.

    Supervised sweeps (the default) additionally carry the journal
    identity (``sweep_id``, ``resumed_from``) and graceful-degradation
    state: points that exhausted their retry budget land in ``failures``
    instead of aborting the sweep.  ``to_dict()`` emits the extra keys
    only when a ``sweep_id`` is present, so payloads from
    hand-constructed results keep the exact pre-supervision v1 shape.

    A *sharded* sweep (``Experiment.sweep(shards=N, shard_index=i)``)
    produces a **partial** result: ``points`` covers only the grid
    positions owned by shard ``i`` (stable content-keyed assignment, see
    :mod:`repro.dist.sharding`), while ``sweep_id`` stays the FULL grid's
    digest and ``grid_keys`` records the full grid key order.
    ``to_dict()`` then adds an additive ``shard`` block so ``repro
    merge`` (:func:`repro.dist.merge_sweep_payloads`) can recombine a
    complete shard set into the exact unsharded payload.
    """

    scenario: str
    parameter: str
    points: Tuple[SweepPoint, ...]
    #: Journal identity of this sweep (the grid's content digest).
    sweep_id: Optional[str] = None
    #: The sweep_id of the journal this run resumed from, if any.
    resumed_from: Optional[str] = None
    #: Points that exhausted their retry budget (graceful degradation).
    failures: Tuple[PointFailure, ...] = field(default=())
    #: Sharded-sweep identity: which shard this partial is (``None`` on
    #: unsharded sweeps, keeping their payloads byte-for-byte unchanged).
    shard_index: Optional[int] = None
    shard_count: Optional[int] = None
    #: The FULL grid's point keys in grid order (sharded sweeps only).
    grid_keys: Optional[Tuple[str, ...]] = None

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def ok(self) -> bool:
        """True when every grid point completed."""
        return not self.failures

    def attempts(self) -> Dict[str, int]:
        """Journal key -> supervised attempt count, completed and failed."""
        counts: Dict[str, int] = {}
        for point in self.points:
            if point.key is not None:
                counts[point.key] = point.attempts
        for failure in self.failures:
            counts[failure.key] = failure.attempts
        return counts

    def digest(self) -> str:
        """Canonical digest over the completed points' payloads.

        Depends only on the simulation outcomes in grid order -- not on
        attempt counts, resume history or failure metadata -- so a
        resumed sweep that completed the same points digests identically
        to an uninterrupted run.
        """
        return result_digest({"points": [dict(p.payload) for p in self.points]})

    def to_dict(self) -> Dict[str, Any]:
        """Schema-v1 sweep payload: one entry per grid point.

        Supervision metadata (``sweep_id``, ``resumed_from``,
        ``attempts``, ``failed_points`` and per-entry ``point_key``) is
        additive and emitted only for supervised sweeps.
        """
        payload: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "scenario": self.scenario,
            "sweep": [
                {
                    "parameter": p.parameter,
                    "value": p.value,
                    **({"point_key": p.key} if p.key is not None else {}),
                    **p.payload,
                }
                for p in self.points
            ],
        }
        if self.sweep_id is not None:
            payload["sweep_id"] = self.sweep_id
            payload["resumed_from"] = self.resumed_from
            payload["attempts"] = self.attempts()
            payload["failed_points"] = [f.to_dict() for f in self.failures]
        if self.shard_count is not None:
            payload["shard"] = {
                "index": self.shard_index,
                "count": self.shard_count,
                "parameter": self.parameter,
                "grid_keys": list(self.grid_keys or ()),
            }
        return payload


@dataclass(frozen=True)
class ProfileResult:
    """Outcome of one :meth:`repro.api.Experiment.profile`.

    Carries the full :class:`RunResult` (``.run``) plus the wall-clock
    measurement and the persistent plan-cache counters of the run.
    """

    run: RunResult
    wall_seconds: float
    plan_cache: Mapping[str, Any]

    @property
    def scenario(self) -> str:
        return self.run.scenario

    @property
    def events_processed(self) -> int:
        return self.run.events_processed

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.run.events_processed / self.wall_seconds

    @property
    def events_by_kind(self) -> Mapping[str, int]:
        return self.run.events_by_kind

    @property
    def timings_by_kind(self) -> Mapping[str, float]:
        return self.run.timings_by_kind

    @property
    def handler_seconds(self) -> float:
        """Total wall-clock seconds spent inside event handlers."""
        return sum(self.run.timings_by_kind.values())

    def to_dict(self) -> Dict[str, Any]:
        """Schema-v1 profile payload (the ``repro profile --json`` shape)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "scenario": self.scenario,
            "environment": environment_block(self.run.spec.kernel_backend),
            "wall_seconds": round(self.wall_seconds, 4),
            "events_processed": self.events_processed,
            "events_per_second": round(self.events_per_second, 2),
            "events_by_kind": dict(self.events_by_kind),
            "timings_by_kind": {
                kind: round(seconds, 6)
                for kind, seconds in self.timings_by_kind.items()
            },
            "plan_cache": dict(self.plan_cache),
        }

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The profile as a Chrome trace (``chrome://tracing`` / Perfetto).

        The kernel keeps *accumulated* per-kind handler times, not
        per-event timestamps, so the trace renders the accumulator: one
        process, one track per event kind, and on each track a single
        complete ("X") slice whose duration is that kind's total handler
        seconds, annotated with the event count and mean per-event cost.
        Track 0 carries the whole run's wall-clock slice, so the gap
        between it and the handler slices is visible kernel/queue
        overhead.  Load the written file directly in Perfetto or
        ``chrome://tracing``.
        """
        to_us = 1e6  # trace timestamps/durations are microseconds
        trace_events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": 1,
                "tid": 0,
                "args": {"name": f"repro profile: {self.scenario}"},
            },
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": 0,
                "args": {"name": "run (wall-clock)"},
            },
            {
                "ph": "X",
                "name": "run",
                "cat": "run",
                "pid": 1,
                "tid": 0,
                "ts": 0,
                "dur": round(self.wall_seconds * to_us, 3),
                "args": {
                    "events_processed": self.events_processed,
                    "events_per_second": round(self.events_per_second, 2),
                },
            },
        ]
        counts = dict(self.events_by_kind)
        for tid, kind in enumerate(sorted(self.timings_by_kind), start=1):
            seconds = self.timings_by_kind[kind]
            count = counts.get(kind, 0)
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": f"handlers: {kind}"},
                }
            )
            trace_events.append(
                {
                    "ph": "X",
                    "name": kind,
                    "cat": "handler",
                    "pid": 1,
                    "tid": tid,
                    "ts": 0,
                    "dur": round(seconds * to_us, 3),
                    "args": {
                        "events": count,
                        "mean_us_per_event": round(
                            seconds * to_us / count, 3
                        )
                        if count
                        else 0.0,
                    },
                }
            )
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "scenario": self.scenario,
                **environment_block(self.run.spec.kernel_backend),
            },
        }

"""The :class:`Experiment` facade: the one programmatic entry point.

An ``Experiment`` is an immutable handle on a scenario -- loaded from
YAML/JSON, built from a raw dict, or wrapped around an existing
:class:`~repro.sim.scenario.ScenarioSpec` -- with builder-style
refinement and every execution mode of the CLI::

    from repro.api import Experiment

    exp = (
        Experiment.from_yaml("scenarios/multi_tenant.yaml")
        .with_policy("slack+sjf")
        .with_override("tenants.0.workload.arrival_rate_per_hour", 240)
    )
    result = exp.run()                     # -> RunResult
    grid = exp.sweep(parameter="policy", values=["sjf", "edf+sjf"])
    profile = exp.profile()                # -> ProfileResult
    for event in exp.iter_events():        # step-wise embedding
        ...

Builder methods return *new* experiments (the receiver is never
mutated), so refinements fork cheaply and scenario state can never leak
between runs.  Validation is lazy -- ``validate()`` (or the first
``run``/``sweep``/``profile``) parses the raw document into a
:class:`~repro.sim.scenario.ScenarioSpec` and raises
:class:`~repro.sim.scenario.ScenarioError` on malformed input.
"""

from __future__ import annotations

import copy
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import registry
from repro.api.results import (
    PointFailure,
    ProfileResult,
    RunResult,
    SweepPoint,
    SweepResult,
)
from repro.exec import (
    ChaosPlan,
    RetryPolicy,
    SupervisedTask,
    Supervisor,
    SweepJournal,
    content_digest,
)
from repro.sim.events import Event
from repro.sim.multi_tenant import MultiTenantResult, MultiTenantSimulator
from repro.sim.observers import RunObserver
from repro.sim.scenario import (
    ScenarioError,
    ScenarioSpec,
    build_tenants,
    load_scenario_dict,
    set_by_path,
    spec_to_dict,
)
from repro.utils import plancache


class EventStream:
    """Pull-style run handle: iterate simulation events one at a time.

    Yields every processed :class:`~repro.sim.events.Event` *after* its
    state changes were applied.  When the stream is exhausted, ``result``
    holds the :class:`~repro.api.results.RunResult`; ``finish()`` drains
    whatever remains and returns it (abandoning a stream midway simply
    leaves the simulation unfinished).
    """

    def __init__(
        self, events: Iterator[Event], wrap: Callable[[MultiTenantResult], RunResult]
    ) -> None:
        self._events = events
        self._wrap = wrap
        self.result: Optional[RunResult] = None

    def __iter__(self) -> "EventStream":
        return self

    def __next__(self) -> Event:
        try:
            return next(self._events)
        except StopIteration as stop:
            if self.result is None and stop.value is not None:
                self.result = self._wrap(stop.value)
            raise StopIteration from None

    def finish(self) -> RunResult:
        """Drain the remaining events and return the final result."""
        for _ in self:
            pass
        assert self.result is not None
        return self.result

    def close(self) -> None:
        """Abandon the stream (the partial simulation is discarded)."""
        self._events.close()


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C landed mid-sweep; completed points are safe in the journal.

    Subclasses ``KeyboardInterrupt`` so naive callers still unwind, while
    supervised callers (the CLI) can report the checkpoint state: how
    many points finished, the ``sweep_id`` to pass to ``--resume``, and
    where the journal lives.  In-flight workers were terminated and the
    journal was flushed before this was raised.
    """

    def __init__(
        self,
        *,
        sweep_id: str,
        completed: int,
        total: int,
        journal_path: Optional[str] = None,
    ) -> None:
        self.sweep_id = sweep_id
        self.completed = completed
        self.total = total
        self.journal_path = journal_path
        where = f"; journal: {journal_path}" if journal_path else ""
        super().__init__(
            f"sweep interrupted: {completed}/{total} points completed "
            f"(sweep id {sweep_id}){where}"
        )


def _sweep_point_worker(
    payload: Tuple[Dict[str, Any], Optional[str], Tuple, Optional[str]]
) -> Dict[str, Any]:
    """Run one sweep grid point (executed in a supervised worker process).

    The payload carries the *fully applied* scenario document -- override
    already set, ``sweep`` block stripped -- so the worker is a pure
    ``doc -> simulation core payload`` function and the parent's journal
    key (the document's content digest) describes exactly what ran.

    ``cache_dir`` (``None`` = disabled) points every worker at the same
    persistent plan cache, and ``cache_url`` additionally attaches the
    shared plan-cache service tier, so a sharded fleet pays each plan
    search once *globally* instead of once per worker.  ``registrations``
    replays the parent's policy/preemption registrations referenced by
    the grid, so custom registered callables resolve even under the
    ``spawn``/``forkserver`` start methods, where workers re-import
    ``repro`` from scratch.
    """
    raw, cache_dir, registrations, cache_url = payload
    plancache.configure(
        cache_dir,
        enabled=cache_dir is not None or cache_url is not None,
        remote_url=cache_url,
    )
    for kind, name, obj in registrations:
        target = registry.policies if kind == "policy" else registry.preemption_rules
        target.register(name, obj, overwrite=True)
    result = Experiment.from_dict(raw).run()
    return result.raw.to_dict()


def _shippable_registrations(
    spec: ScenarioSpec, parameter: str, values: Sequence[Any]
) -> Tuple[Tuple[str, str, Callable], ...]:
    """The (kind, name, callable) triples sweep workers must replay.

    Covers the base spec's policy/preemption plus, when the swept
    parameter IS one of those fields, every string value of the grid.
    Entries that cannot pickle (lambdas, closures) are skipped: a forked
    worker inherits them anyway, and a spawned one could never receive
    them -- the pre-pool pickling error would be the same failure, later
    and N times over.
    """
    import pickle

    wanted = {("policy", spec.policy)}
    if spec.preemption is not None:
        wanted.add(("preemption", spec.preemption))
    if parameter in ("policy", "preemption"):
        wanted.update((parameter, v) for v in values if isinstance(v, str))
    shipped = []
    for kind, name in sorted(wanted):
        target = registry.policies if kind == "policy" else registry.preemption_rules
        if name not in target:
            continue
        obj = target.get(name)
        try:
            pickle.dumps(obj)
        except Exception:
            continue
        shipped.append((kind, registry.Registry._key(name), obj))
    return tuple(shipped)


class Experiment:
    """An immutable, runnable scenario (see the module docstring)."""

    def __init__(
        self,
        raw: Optional[Mapping[str, Any]] = None,
        *,
        spec: Optional[ScenarioSpec] = None,
    ) -> None:
        if raw is None and spec is None:
            raise ValueError(
                "Experiment needs a raw scenario dict or a ScenarioSpec; use "
                "Experiment.from_yaml / .from_dict / .from_spec"
            )
        self._raw: Optional[Dict[str, Any]] = (
            copy.deepcopy(dict(raw)) if raw is not None else None
        )
        self._spec: Optional[ScenarioSpec] = spec

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_yaml(cls, path: Union[str, Path]) -> "Experiment":
        """Load a ``.yaml``/``.yml``/``.json`` scenario file."""
        return cls(load_scenario_dict(path))

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "Experiment":
        """Wrap a raw scenario document (deep-copied; never mutated)."""
        return cls(raw)

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "Experiment":
        """Wrap an already-validated :class:`ScenarioSpec` as-is."""
        return cls(spec=spec)

    @classmethod
    def _from_owned(cls, raw: Dict[str, Any]) -> "Experiment":
        """Adopt a document the caller owns (skips the defensive deepcopy).

        Builders fork via :meth:`to_raw` (already a fresh copy) and hand
        the copy straight here, so a chained builder pays one copy per
        step instead of two.
        """
        exp = cls.__new__(cls)
        exp._raw = raw
        exp._spec = None
        return exp

    # -- introspection -----------------------------------------------------------

    @property
    def name(self) -> str:
        """The scenario name (without forcing full validation)."""
        if self._spec is not None:
            return self._spec.name
        assert self._raw is not None
        return str(self._raw.get("name", "unnamed-scenario"))

    def to_raw(self) -> Dict[str, Any]:
        """A deep copy of the scenario document this experiment runs."""
        if self._raw is not None:
            return copy.deepcopy(self._raw)
        assert self._spec is not None
        return spec_to_dict(self._spec)

    def validate(self) -> ScenarioSpec:
        """Parse + validate, returning the :class:`ScenarioSpec`.

        Raises :class:`~repro.sim.scenario.ScenarioError` on any
        malformed field; cached, so repeated calls are free.
        """
        if self._spec is None:
            assert self._raw is not None
            self._spec = ScenarioSpec.from_dict(self._raw)
        return self._spec

    @property
    def spec(self) -> ScenarioSpec:
        """The validated spec (alias for :meth:`validate`)."""
        return self.validate()

    # -- builders (every method returns a NEW Experiment) --------------------------

    def with_override(self, path: str, value: Any) -> "Experiment":
        """Fork with one dotted-path override applied (``"tenants.0.model"``).

        The override semantics are exactly the sweep grid's
        (:func:`~repro.sim.scenario.set_by_path`): integer segments index
        lists, the final segment may create a new mapping key, and
        validation of the overridden document is deferred to
        :meth:`validate`.
        """
        raw = self.to_raw()
        set_by_path(raw, path, value)
        return Experiment._from_owned(raw)

    def with_policy(
        self,
        policy: Union[str, Callable],
        *,
        name: Optional[str] = None,
        overwrite: bool = False,
    ) -> "Experiment":
        """Fork with a different scheduling policy.

        Accepts a registered name (``"sjf"``) or a policy *callable*.  A
        callable is registered on the spot -- under ``name`` or its
        ``__name__`` -- so the experiment's scenario document, sweep
        grids and result payloads all refer to it by that name exactly
        like a shipped policy.  ``overwrite=True`` rebinds a name already
        taken by a *different* object (e.g. a function redefined in a
        notebook cell).
        """
        return self.with_override("policy", _ensure_registered(
            registry.policies, policy, name, overwrite=overwrite
        ))

    def with_preemption(
        self,
        rule: Optional[Union[str, Callable]],
        *,
        name: Optional[str] = None,
        overwrite: bool = False,
    ) -> "Experiment":
        """Fork with a preemption rule (name or callable); ``None`` disables."""
        if rule is None:
            raw = self.to_raw()
            raw.pop("preemption", None)
            return Experiment._from_owned(raw)
        return self.with_override("preemption", _ensure_registered(
            registry.preemption_rules, rule, name, overwrite=overwrite
        ))

    def with_seed(self, seed: int) -> "Experiment":
        """Fork with a different base RNG seed."""
        return self.with_override("seed", int(seed))

    def with_horizon(self, horizon_seconds: float) -> "Experiment":
        """Fork with a different simulation horizon."""
        return self.with_override("horizon_seconds", float(horizon_seconds))

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        *,
        observers: Optional[Sequence[RunObserver]] = None,
        use_cache: bool = True,
    ) -> RunResult:
        """Simulate the scenario end-to-end.

        ``observers`` wires streaming lifecycle callbacks into the run
        (see :class:`repro.api.RunObserver`); without observers the
        simulation takes the kernel's plain, branch-free loop.
        ``use_cache=False`` selects the brute-force reference scheduler
        mode the equivalence tests compare against.
        """
        spec = self.validate()
        simulator = self._build_simulator(spec, use_cache)
        raw_result = simulator.run(
            faults=spec.faults,
            horizon_seconds=spec.horizon_seconds,
            observers=observers,
        )
        return RunResult(scenario=spec.name, spec=spec, raw=raw_result)

    def iter_events(
        self,
        *,
        observers: Optional[Sequence[RunObserver]] = None,
        use_cache: bool = True,
    ) -> EventStream:
        """Run step-wise: an :class:`EventStream` yielding each event.

        The generator twin of :meth:`run` for embedding loops that need
        control between events (animations, coupled co-simulations,
        early-exit searches)::

            stream = exp.iter_events()
            for event in stream:
                ...                        # state is already applied
            print(stream.result.digest())  # same result as exp.run()
        """
        spec = self.validate()
        simulator = self._build_simulator(spec, use_cache)
        events = simulator.iter_run(
            faults=spec.faults,
            horizon_seconds=spec.horizon_seconds,
            observers=observers,
        )
        return EventStream(
            events,
            lambda raw_result: RunResult(
                scenario=spec.name, spec=spec, raw=raw_result
            ),
        )

    def sweep(
        self,
        *,
        parameter: Optional[str] = None,
        values: Optional[Sequence[Any]] = None,
        workers: int = 0,
        max_retries: int = 2,
        timeout_seconds: Optional[float] = None,
        backoff_seconds: float = 0.5,
        journal_dir: Optional[Union[str, Path]] = None,
        resume: Optional[Union[str, bool]] = None,
        chaos: Optional[ChaosPlan] = None,
        shards: int = 1,
        shard_index: int = 0,
        journal_flush_records: int = 1,
        journal_flush_seconds: Optional[float] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> SweepResult:
        """Re-run the scenario across a parameter grid, supervised.

        The grid comes from ``parameter``/``values`` or, when omitted,
        the scenario's own ``sweep`` block.  **Every grid point is
        validated before any worker spawns** -- a typo'd override path or
        an invalid value raises :class:`ScenarioError` immediately
        instead of after N worker processes fan out.

        Execution is crash-safe.  Each grid point runs as a supervised
        task: a worker that raises, crashes (OOM-kill, segfault) or
        exceeds ``timeout_seconds`` costs one attempt and is retried with
        exponential backoff (``backoff_seconds`` doubling per retry) up
        to ``max_retries`` extra attempts; a point that exhausts its
        budget lands in :attr:`SweepResult.failures` instead of aborting
        the grid.  ``workers`` defaults to ``min(grid size, 4)``; ``1``
        runs in-process (exceptions are still retried, but kills and
        hangs cannot be detected without a second process).  Workers
        inherit the caller's persistent plan-cache configuration, so the
        grid pays each plan search once.

        ``journal_dir`` enables checkpoint/resume: every completed point
        is appended (and fsynced) to
        ``<journal_dir>/<sweep_id>/journal.jsonl``, where ``sweep_id`` is
        the grid's content digest.  ``resume="auto"`` (or an explicit
        sweep id) skips journaled points and merges them back
        bit-identically -- :meth:`SweepResult.digest` of a resumed sweep
        equals an uninterrupted run's.  Resuming against a different grid
        raises :class:`ScenarioError`.  Ctrl-C raises
        :class:`SweepInterrupted` (a ``KeyboardInterrupt``) after
        terminating in-flight workers and flushing the journal.

        ``shards``/``shard_index`` split the grid across independent
        processes or machines (``repro sweep --shard i/N``): the full
        grid is still built and validated, but only the points whose
        content key hashes to ``shard_index`` (stable assignment, see
        :func:`repro.dist.shard`) are executed.  The partial
        :class:`SweepResult` keeps the FULL grid's ``sweep_id`` and
        carries an additive ``shard`` payload block; a complete set of
        partials recombines via ``repro merge``
        (:func:`repro.dist.merge_sweep_payloads`) into the exact payload
        the unsharded sweep produces.  Each shard journals independently
        (journal id ``<sweep_id>-shard<i>of<N>``), so shards on one
        machine never contend and each resumes on its own.

        ``journal_flush_records``/``journal_flush_seconds`` batch the
        journal's per-record fsyncs (every K records or T seconds,
        whichever first; always on close) for sweeps whose points are
        cheaper than an fsync -- see :class:`repro.exec.SweepJournal`.
        The defaults keep fsync-per-record durability.

        ``chaos`` injects a :class:`repro.exec.ChaosPlan` fault into
        every attempt (testing); ``log`` receives one-line progress
        strings.
        """
        spec = self.validate()
        shards = int(shards)
        shard_index = int(shard_index)
        if shards < 1:
            raise ScenarioError(f"shards must be >= 1, got {shards}")
        if not 0 <= shard_index < shards:
            raise ScenarioError(
                f"shard_index must be in [0, {shards}), got {shard_index}"
            )
        if parameter is None:
            if spec.sweep is None:
                raise ScenarioError(
                    "scenario has no 'sweep' block; pass parameter= and values="
                )
            parameter, values = spec.sweep.parameter, list(spec.sweep.values)
        if not values:
            raise ScenarioError("no sweep values given")
        say = log if log is not None else (lambda message: None)

        base = self.to_raw()
        # Fail fast: apply + validate every point up front (validation is
        # pure dict work -- no models or systems are built).  The applied
        # document is kept: its content digest is the point's journal
        # key, and the worker receives it ready to run.
        grid: List[Tuple[Any, str, Dict[str, Any]]] = []
        for value in values:
            point = copy.deepcopy(base)
            try:
                set_by_path(point, parameter, value)
            except (ScenarioError, LookupError) as exc:
                raise ScenarioError(
                    f"sweep parameter {parameter!r} does not resolve: {exc}"
                ) from None
            point.pop("sweep", None)
            ScenarioSpec.from_dict(point)
            key = content_digest(
                {"parameter": parameter, "value": value, "doc": point}
            )
            grid.append((value, key, point))

        grid_keys = [key for _, key, _ in grid]
        grid_digest = content_digest(
            {
                "scenario": spec.name,
                "parameter": parameter,
                "points": grid_keys,
            }
        )
        # The sweep's journal identity IS the grid digest: deterministic,
        # so an identical re-invocation can resume with --resume auto.
        # Every shard of a grid shares this identity; only the journal
        # directory (journal_id below) is per-shard.
        sweep_id = grid_digest

        if shards > 1:
            from repro.dist.sharding import shard as shard_of

            owned = [entry for entry in grid if shard_of(entry[1], shards) == shard_index]
            journal_id = f"{sweep_id}-shard{shard_index}of{shards}"
            say(
                f"shard {shard_index}/{shards}: {len(owned)} of "
                f"{len(grid)} grid points owned"
            )
        else:
            owned = grid
            journal_id = sweep_id
        unique_keys = {key for _, key, _ in owned}

        if resume not in (None, False) and journal_dir is None:
            raise ScenarioError(
                "sweep resume requires a journal directory (journal_dir=...)"
            )
        journal: Optional[SweepJournal] = None
        resumed_from: Optional[str] = None
        prior: Dict[str, Dict[str, Any]] = {}
        if journal_dir is not None:
            resume_id: Optional[str] = None
            if resume in (True, "auto"):
                resume_id = journal_id
            elif resume:
                resume_id = str(resume)
            if resume_id is not None:
                journal = SweepJournal.for_sweep(
                    journal_dir,
                    resume_id,
                    flush_every_records=journal_flush_records,
                    flush_max_seconds=journal_flush_seconds,
                )
                if not journal.exists():
                    raise ScenarioError(
                        f"no sweep journal for {resume_id!r} under {journal_dir}"
                    )
                state = journal.read()
                header = state.header or {}
                if header.get("grid_digest") != grid_digest:
                    raise ScenarioError(
                        f"cannot resume sweep {resume_id!r}: its journal was "
                        f"written for a different grid (journal digest "
                        f"{header.get('grid_digest')!r}, this grid is "
                        f"{grid_digest!r})"
                    )
                prior = {k: v for k, v in state.completed.items() if k in unique_keys}
                resumed_from = resume_id
                journal.open_append()
                say(
                    f"resuming sweep {resume_id}: {len(prior)}/{len(unique_keys)} "
                    f"points already journaled"
                )
            else:
                journal = SweepJournal.for_sweep(
                    journal_dir,
                    journal_id,
                    flush_every_records=journal_flush_records,
                    flush_max_seconds=journal_flush_seconds,
                )
                # grid_keys/grid_values (and the shard assignment, when
                # sharded) are additive header keys: they let ``repro
                # merge`` reconstruct this shard's partial payload from
                # the journal alone (repro.dist.merge).
                header = {
                    "sweep_id": sweep_id,
                    "scenario": spec.name,
                    "parameter": parameter,
                    "grid_digest": grid_digest,
                    "num_points": len(grid) if shards == 1 else len(owned),
                    "grid_keys": grid_keys,
                    "grid_values": [value for value, _, _ in grid],
                }
                if shards > 1:
                    header["shard_index"] = shard_index
                    header["shard_count"] = shards
                journal.start(header)

        cache_dir = (
            str(plancache.cache_dir())
            if plancache.is_enabled() and plancache.cache_dir() is not None
            else None
        )
        cache_url = plancache.remote_url()
        registrations = _shippable_registrations(spec, parameter, values)

        # One supervised task per unique, not-yet-journaled point this
        # shard owns (duplicate grid values share one execution).
        tasks: List[SupervisedTask] = []
        task_values: Dict[str, Any] = {}
        for value, key, doc in owned:
            if key in task_values or key in prior:
                continue
            task_values[key] = value
            tasks.append(
                SupervisedTask(
                    key=key,
                    payload=(doc, cache_dir, registrations, cache_url),
                    description=f"{parameter}={value}",
                )
            )

        fresh: Dict[str, Any] = {}
        failed: Dict[str, Any] = {}

        def _progress() -> str:
            done = len(prior) + len(fresh) + len(failed)
            return f"[{done}/{len(unique_keys)}]"

        def on_outcome(outcome) -> None:
            value = task_values[outcome.key]
            if outcome.ok:
                fresh[outcome.key] = outcome
                if journal is not None:
                    journal.record_completed(
                        outcome.key,
                        parameter=parameter,
                        value=value,
                        attempts=outcome.attempts,
                        payload=outcome.result,
                    )
                plural = "s" if outcome.attempts != 1 else ""
                say(
                    f"{_progress()} {parameter}={value} completed "
                    f"({outcome.attempts} attempt{plural})"
                )
            else:
                failed[outcome.key] = outcome
                failure = outcome.failure
                if journal is not None:
                    journal.record_failed(
                        outcome.key,
                        parameter=parameter,
                        value=value,
                        attempts=outcome.attempts,
                        kind=failure.kind,
                        error_type=failure.error_type,
                        message=failure.message,
                    )
                say(
                    f"{_progress()} {parameter}={value} FAILED after "
                    f"{outcome.attempts} attempts: {failure.describe()}"
                )

        def on_retry(task, attempt, failure, delay) -> None:
            say(
                f"retrying {parameter}={task_values[task.key]} "
                f"(attempt {attempt} {failure.kind}: {failure.message}; "
                f"backing off {delay:.2f}s)"
            )

        supervisor = Supervisor(
            _sweep_point_worker,
            workers=workers or min(len(tasks) or 1, 4),
            retry=RetryPolicy(
                max_retries=max_retries,
                timeout_seconds=timeout_seconds,
                backoff_seconds=backoff_seconds,
            ),
            chaos=chaos,
            on_outcome=on_outcome,
            on_retry=on_retry,
        )
        try:
            if tasks:
                supervisor.run(tasks)
        except KeyboardInterrupt:
            # Workers are already terminated and every completed point is
            # fsynced in the journal -- surface the checkpoint state.
            raise SweepInterrupted(
                sweep_id=journal_id,
                completed=len(prior) + len(fresh),
                total=len(unique_keys),
                journal_path=str(journal.path) if journal is not None else None,
            ) from None
        finally:
            if journal is not None:
                journal.close()

        # Merge in grid order: journaled points (JSON round-trips ints
        # and floats exactly, so resumed payloads digest identically),
        # fresh outcomes, and structured failures.
        points: List[SweepPoint] = []
        failures: List[PointFailure] = []
        for value, key, _doc in owned:
            if key in prior:
                record = prior[key]
                points.append(
                    SweepPoint(
                        parameter=parameter,
                        value=value,
                        payload=record["payload"],
                        key=key,
                        attempts=int(record.get("attempts", 1)),
                    )
                )
            elif key in fresh:
                outcome = fresh[key]
                points.append(
                    SweepPoint(
                        parameter=parameter,
                        value=value,
                        payload=outcome.result,
                        key=key,
                        attempts=outcome.attempts,
                    )
                )
            elif key in failed:
                outcome = failed[key]
                failure = outcome.failure
                failures.append(
                    PointFailure(
                        parameter=parameter,
                        value=value,
                        key=key,
                        attempts=outcome.attempts,
                        kind=failure.kind,
                        error_type=failure.error_type,
                        message=failure.message,
                    )
                )
        return SweepResult(
            scenario=spec.name,
            parameter=parameter,
            points=tuple(points),
            sweep_id=sweep_id,
            resumed_from=resumed_from,
            failures=tuple(failures),
            shard_index=shard_index if shards > 1 else None,
            shard_count=shards if shards > 1 else None,
            grid_keys=tuple(grid_keys) if shards > 1 else None,
        )

    def profile(self, *, use_cache: bool = True) -> ProfileResult:
        """Run once and report where the simulation time went.

        The kernel accumulates per-event-kind handler timings on every
        run; profiling surfaces that accumulator next to wall-clock time
        and the persistent plan-cache counters (reset at the start of the
        profiled run).
        """
        plancache.reset_stats()
        t0 = time.perf_counter()
        run = self.run(use_cache=use_cache)
        wall = time.perf_counter() - t0
        return ProfileResult(
            run=run,
            wall_seconds=wall,
            plan_cache={"enabled": plancache.is_enabled(), **plancache.stats()},
        )

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _build_simulator(spec: ScenarioSpec, use_cache: bool) -> MultiTenantSimulator:
        return MultiTenantSimulator(
            build_tenants(spec),
            policy=spec.policy,
            preemption_rule=spec.preemption,
            use_cache=use_cache,
            kernel_backend=spec.kernel_backend,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Experiment({self.name!r})"


def _ensure_registered(
    target: registry.Registry,
    obj: Union[str, Callable],
    name: Optional[str],
    *,
    overwrite: bool = False,
) -> str:
    """Resolve ``obj`` to a registered name, registering callables on the fly."""
    if isinstance(obj, str):
        target.get(obj)  # fail fast on unknown names
        return obj
    resolved = name or target.name_of(obj) or getattr(obj, "__name__", None)
    if not resolved:
        raise ValueError(
            f"cannot derive a registry name for {obj!r}; pass name=..."
        )
    target.register(resolved, obj, overwrite=overwrite)  # idempotent for the same object
    return resolved

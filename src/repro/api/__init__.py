"""``repro.api`` -- the stable, embeddable public API of the simulator.

This package is the supported surface for programmatic users; everything
the CLI can do routes through it:

* :class:`Experiment` -- load / build / refine / run scenarios
  (``from_yaml``, ``from_dict``, ``from_spec``, ``with_*`` builders,
  ``run``, ``sweep``, ``profile``, ``iter_events``).
* :class:`RunResult` / :class:`SweepResult` / :class:`ProfileResult` --
  typed outcomes whose ``to_dict()`` payloads carry ``schema_version``
  and are frozen as schema v1 (:mod:`repro.api.schema` validates them).
* :class:`RunObserver` / :class:`EventStream` -- streaming lifecycle
  callbacks and step-wise iteration over a live simulation.
* The supervised sweep runtime (:mod:`repro.exec`) -- ``sweep()`` runs
  every grid point under crash/hang supervision with retry + backoff
  (:class:`RetryPolicy`), journaled checkpoint/resume
  (``journal_dir=`` / ``resume=``), structured per-point failures
  (:class:`PointFailure`), :class:`SweepInterrupted` on Ctrl-C and
  registry-backed fault injection (:class:`ChaosPlan`,
  :func:`register_chaos_injector`).
* :class:`InvariantObserver` / :class:`InvariantViolation` /
  :class:`RunContext` -- the runtime invariant engine
  (:mod:`repro.verify`): attach the observer to any run to assert
  conservation, clock and accounting invariants on every event, and
  register custom invariants via :func:`register_invariant`.
* :mod:`repro.registry` (re-exported helpers) -- decorator registration
  of policies, preemption rules, arrival processes, fault models and
  bench sizes, plus ``repro.plugins`` entry-point discovery for
  third-party packages.

Quick start::

    from repro.api import Experiment

    result = Experiment.from_yaml("scenarios/quickstart.yaml").run()
    print(result.summary_table().to_ascii())
    payload = result.to_dict()          # schema_version == 1

Compatibility: ``repro.sim.scenario.run_scenario`` / ``load_scenario``
remain as deprecation shims over this facade and produce bit-identical
results.
"""

from repro.api.experiment import EventStream, Experiment, SweepInterrupted
from repro.api.results import (
    SCHEMA_VERSION,
    PointFailure,
    ProfileResult,
    RunResult,
    SweepPoint,
    SweepResult,
    result_digest,
)
from repro.exec import ChaosPlan, RetryPolicy
from repro.api.schema import (
    SchemaError,
    validate_bench_payload,
    validate_profile_payload,
    validate_run_payload,
    validate_sweep_payload,
)
from repro.registry import (
    ENTRY_POINT_GROUP,
    load_entry_point_plugins,
    register_analysis_rule,
    register_arrival_process,
    register_bench_size,
    register_chaos_injector,
    register_fault_model,
    register_fuzz_budget,
    register_invariant,
    register_kernel_backend,
    register_policy,
    register_preemption_rule,
)
from repro.sim.observers import RunContext, RunObserver
from repro.sim.scenario import ScenarioError, ScenarioSpec
from repro.verify import (
    DifferentialMismatch,
    FuzzBudget,
    InvariantObserver,
    InvariantViolation,
    ScenarioFuzzer,
    run_fuzz_campaign,
)

__all__ = [
    "Experiment",
    "EventStream",
    "RunObserver",
    "RunContext",
    "InvariantObserver",
    "InvariantViolation",
    "DifferentialMismatch",
    "FuzzBudget",
    "ScenarioFuzzer",
    "run_fuzz_campaign",
    "RunResult",
    "SweepResult",
    "SweepPoint",
    "SweepInterrupted",
    "PointFailure",
    "ChaosPlan",
    "RetryPolicy",
    "ProfileResult",
    "SCHEMA_VERSION",
    "result_digest",
    "SchemaError",
    "validate_run_payload",
    "validate_sweep_payload",
    "validate_profile_payload",
    "validate_bench_payload",
    "ScenarioError",
    "ScenarioSpec",
    "ENTRY_POINT_GROUP",
    "load_entry_point_plugins",
    "register_policy",
    "register_preemption_rule",
    "register_arrival_process",
    "register_fault_model",
    "register_bench_size",
    "register_invariant",
    "register_fuzz_budget",
    "register_chaos_injector",
    "register_kernel_backend",
    "register_analysis_rule",
]

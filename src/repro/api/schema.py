"""Structural validation of the frozen schema-v1 result payloads.

The validators check the JSON payloads emitted by
:meth:`RunResult.to_dict`, :meth:`SweepResult.to_dict`,
:meth:`ProfileResult.to_dict` and ``repro bench`` against the **frozen
v1 shapes**: required keys present with the right primitive types,
``schema_version`` correct, metric blocks complete.  They are
dependency-free (no jsonschema) and are what the schema round-trip tests
and external consumers use to prove a payload is well-formed.

All validators raise :class:`SchemaError` naming the offending path, and
return the payload unchanged so they compose as pass-throughs::

    payload = validate_run_payload(json.load(fh))
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.results import SCHEMA_VERSION

_NUMBER = (int, float)


class SchemaError(ValueError):
    """A result payload does not match its frozen schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _require_mapping(payload: Any, where: str) -> Mapping[str, Any]:
    _require(isinstance(payload, Mapping), f"{where} must be a mapping")
    return payload


def _check_key(payload: Mapping[str, Any], key: str, types, where: str) -> Any:
    _require(key in payload, f"{where} is missing required key {key!r}")
    value = payload[key]
    _require(
        isinstance(value, types),
        f"{where}.{key} must be {types}, got {type(value).__name__}",
    )
    return value


def _check_count_map(payload: Mapping[str, Any], key: str, where: str) -> None:
    block = _require_mapping(payload.get(key), f"{where}.{key}")
    for kind, count in block.items():
        _require(
            isinstance(kind, str) and isinstance(count, _NUMBER),
            f"{where}.{key} must map strings to numbers",
        )


#: Every key of the frozen fill-metrics block (aggregate and per-tenant).
METRICS_KEYS = (
    "jobs_submitted",
    "jobs_completed",
    "jobs_rejected",
    "total_flops",
    "total_samples",
    "busy_device_seconds",
    "average_jct",
    "makespan",
    "num_preemptions",
    "deadlines_total",
    "deadlines_met",
    "completion_rate",
    "deadline_hit_rate",
)

#: Every key of the frozen per-tenant result block.
TENANT_KEYS = (
    "num_devices",
    "jobs_submitted_by",
    "fill_tflops_per_device",
    "main_tflops_per_device",
    "total_tflops_per_device",
    "bubble_ratio",
    "fill_metrics",
)


def _check_environment(payload: Mapping[str, Any], where: str) -> None:
    """The additive ``environment`` block (kernel backend + versions).

    Digest-neutral provenance: checked only when present, so payloads
    recorded before the block existed stay valid.
    """
    if "environment" not in payload:
        return
    block = _require_mapping(payload["environment"], f"{where}.environment")
    _check_key(block, "kernel_backend", str, f"{where}.environment")
    _check_key(block, "python", str, f"{where}.environment")
    _check_key(block, "numpy", str, f"{where}.environment")


def _check_metrics(block: Any, where: str) -> None:
    block = _require_mapping(block, where)
    for key in METRICS_KEYS:
        _check_key(block, key, _NUMBER, where)


def _check_version(payload: Mapping[str, Any], where: str) -> None:
    version = _check_key(payload, "schema_version", int, where)
    _require(
        version == SCHEMA_VERSION,
        f"{where}.schema_version must be {SCHEMA_VERSION}, got {version}",
    )


def _check_run_core(payload: Mapping[str, Any], where: str) -> None:
    """The simulation-outcome block shared by run payloads and sweep points."""
    _check_key(payload, "horizon_seconds", _NUMBER, where)
    _check_key(payload, "num_devices", int, where)
    _check_key(payload, "fill_tflops_per_device", _NUMBER, where)
    _check_key(payload, "backlog_remaining", int, where)
    _check_key(payload, "jobs_rejected_global", int, where)
    _check_key(payload, "events_processed", int, where)
    _check_count_map(payload, "events_by_kind", where)
    _check_metrics(payload.get("aggregate"), f"{where}.aggregate")
    tenants = _require_mapping(payload.get("tenants"), f"{where}.tenants")
    _require(len(tenants) >= 1, f"{where}.tenants must not be empty")
    for name, tenant in tenants.items():
        tenant_where = f"{where}.tenants[{name!r}]"
        tenant = _require_mapping(tenant, tenant_where)
        for key in TENANT_KEYS:
            _require(key in tenant, f"{tenant_where} is missing {key!r}")
        _check_metrics(tenant["fill_metrics"], f"{tenant_where}.fill_metrics")


def validate_run_payload(payload: Any) -> Mapping[str, Any]:
    """Validate a ``RunResult.to_dict()`` / ``repro run --json`` payload."""
    payload = _require_mapping(payload, "run payload")
    _check_version(payload, "run payload")
    _check_key(payload, "scenario", str, "run payload")
    _check_environment(payload, "run payload")
    _check_run_core(payload, "run payload")
    if "timings_by_kind" in payload:
        _check_count_map(payload, "timings_by_kind", "run payload")
    return payload


def _check_failed_points(payload: Mapping[str, Any], where: str) -> None:
    failures = payload.get("failed_points")
    _require(
        isinstance(failures, list), f"{where}.failed_points must be a list"
    )
    for i, failure in enumerate(failures):
        f_where = f"{where}.failed_points[{i}]"
        failure = _require_mapping(failure, f_where)
        _check_key(failure, "parameter", str, f_where)
        _require("value" in failure, f"{f_where} is missing 'value'")
        _check_key(failure, "point_key", str, f_where)
        _check_key(failure, "attempts", int, f_where)
        _check_key(failure, "kind", str, f_where)
        _check_key(failure, "error_type", str, f_where)
        _check_key(failure, "message", str, f_where)


def validate_sweep_payload(payload: Any) -> Mapping[str, Any]:
    """Validate a ``SweepResult.to_dict()`` / ``repro sweep --json`` payload.

    Supervision metadata (``sweep_id``, ``resumed_from``, ``attempts``,
    ``failed_points``) and the sharded-sweep ``shard`` block are additive
    and checked only when present; an empty ``sweep`` list is legal only
    when ``failed_points`` explains where the grid went or the payload is
    a shard partial that owns zero points (graceful degradation, never
    silent emptiness).
    """
    payload = _require_mapping(payload, "sweep payload")
    _check_version(payload, "sweep payload")
    _check_key(payload, "scenario", str, "sweep payload")
    points = payload.get("sweep")
    _require(isinstance(points, list), "sweep payload.sweep must be a list")
    if not points:
        # A shard may legitimately own zero grid points; everything else
        # must explain an empty grid with failures.
        _require(
            bool(payload.get("failed_points")) or "shard" in payload,
            "sweep payload.sweep must be a non-empty list",
        )
    for i, point in enumerate(points):
        where = f"sweep payload.sweep[{i}]"
        point = _require_mapping(point, where)
        _check_key(point, "parameter", str, where)
        _require("value" in point, f"{where} is missing 'value'")
        if "point_key" in point:
            _check_key(point, "point_key", str, where)
        _check_run_core(point, where)
    if "sweep_id" in payload:
        _check_key(payload, "sweep_id", str, "sweep payload")
        resumed = payload.get("resumed_from")
        _require(
            resumed is None or isinstance(resumed, str),
            "sweep payload.resumed_from must be a string or null",
        )
        _check_count_map(payload, "attempts", "sweep payload")
        _check_failed_points(payload, "sweep payload")
    elif "failed_points" in payload:
        _check_failed_points(payload, "sweep payload")
    if "shard" in payload:
        where = "sweep payload.shard"
        block = _require_mapping(payload["shard"], where)
        index = _check_key(block, "index", int, where)
        count = _check_key(block, "count", int, where)
        _require(
            0 <= index < count, f"{where}.index must be in [0, {where}.count)"
        )
        _check_key(block, "parameter", str, where)
        keys = block.get("grid_keys")
        _require(
            isinstance(keys, list)
            and all(isinstance(k, str) for k in keys),
            f"{where}.grid_keys must be a list of strings",
        )
    return payload


def validate_profile_payload(payload: Any) -> Mapping[str, Any]:
    """Validate a ``ProfileResult.to_dict()`` / ``repro profile --json`` payload."""
    payload = _require_mapping(payload, "profile payload")
    _check_version(payload, "profile payload")
    _check_key(payload, "scenario", str, "profile payload")
    _check_environment(payload, "profile payload")
    _check_key(payload, "wall_seconds", _NUMBER, "profile payload")
    _check_key(payload, "events_processed", int, "profile payload")
    _check_key(payload, "events_per_second", _NUMBER, "profile payload")
    _check_count_map(payload, "events_by_kind", "profile payload")
    _check_count_map(payload, "timings_by_kind", "profile payload")
    cache = _require_mapping(payload.get("plan_cache"), "profile payload.plan_cache")
    _require("enabled" in cache, "profile payload.plan_cache is missing 'enabled'")
    return payload


def validate_bench_payload(payload: Any) -> Mapping[str, Any]:
    """Validate a ``repro bench`` / ``BENCH_<size>.json`` payload."""
    payload = _require_mapping(payload, "bench payload")
    schema = _check_key(payload, "schema", str, "bench payload")
    _require(
        schema == "repro-bench/v1",
        f"bench payload.schema must be 'repro-bench/v1', got {schema!r}",
    )
    _check_key(payload, "size", str, "bench payload")
    _check_key(payload, "num_jobs", int, "bench payload")
    cases = payload.get("cases")
    _require(isinstance(cases, list) and cases, "bench payload.cases must be a non-empty list")
    for i, case in enumerate(cases):
        where = f"bench payload.cases[{i}]"
        case = _require_mapping(case, where)
        _check_key(case, "name", str, where)
        _check_key(case, "num_jobs", int, where)
        _check_key(case, "num_executors", int, where)
        timing = _require_mapping(case.get("optimized"), f"{where}.optimized")
        for key in (
            "setup_seconds",
            "run_seconds",
            "events_processed",
            "events_per_second",
            "jobs_submitted",
            "jobs_completed",
        ):
            _check_key(timing, key, _NUMBER, f"{where}.optimized")
        _check_key(timing, "result_digest", str, f"{where}.optimized")
    return payload

"""Layer-to-stage partitioning for pipeline parallelism.

The main job's model is split into ``p`` contiguous stages.  Following
Megatron/DeepSpeed practice the split balances per-stage *compute* (forward
FLOPs), which also keeps bubble arithmetic honest: the analytical bubble
fraction assumes roughly equal stage times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.models.base import ModelSpec
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class StagePartition:
    """One pipeline stage: a contiguous slice of the model's layers."""

    stage_id: int
    num_stages: int
    model: ModelSpec
    layer_start: int
    layer_stop: int

    @property
    def is_first(self) -> bool:
        """True for stage 0 (owns the embedding / input)."""
        return self.stage_id == 0

    @property
    def is_last(self) -> bool:
        """True for the final stage (owns the head / loss)."""
        return self.stage_id == self.num_stages - 1

    @property
    def param_count(self) -> float:
        """Learnable parameters held by this stage."""
        return self.model.param_count

    @property
    def fwd_flops_per_sample(self) -> float:
        """Forward FLOPs per sample executed by this stage."""
        return self.model.fwd_flops_per_sample


def _balanced_boundaries(weights: Sequence[float], num_stages: int) -> List[int]:
    """Split ``weights`` into ``num_stages`` contiguous chunks of similar sum.

    A greedy cumulative-target split: boundary ``i`` is placed where the
    running sum first reaches ``i/num_stages`` of the total.  This is the
    same heuristic DeepSpeed's ``partition_balanced`` uses and is exact when
    the weights are uniform (the transformer-block case).
    """
    total = float(np.sum(weights))
    if total <= 0:
        # Degenerate (e.g. all-zero weights): fall back to equal layer counts.
        edges = np.linspace(0, len(weights), num_stages + 1)
        return [int(round(e)) for e in edges]
    cumulative = np.cumsum(weights)
    boundaries = [0]
    for stage in range(1, num_stages):
        target = total * stage / num_stages
        idx = int(np.searchsorted(cumulative, target, side="left")) + 1
        idx = max(idx, boundaries[-1] + 1)
        idx = min(idx, len(weights) - (num_stages - stage))
        boundaries.append(idx)
    boundaries.append(len(weights))
    return boundaries


def partition_layers(model: ModelSpec, num_stages: int) -> List[StagePartition]:
    """Partition ``model`` into ``num_stages`` contiguous, compute-balanced stages."""
    check_positive(num_stages, "num_stages")
    if num_stages > model.num_layers:
        raise ValueError(
            f"cannot split {model.num_layers} layers into {num_stages} stages"
        )
    weights = [layer.fwd_flops_per_sample for layer in model.layers]
    boundaries = _balanced_boundaries(weights, num_stages)
    partitions: List[StagePartition] = []
    for stage_id in range(num_stages):
        start, stop = boundaries[stage_id], boundaries[stage_id + 1]
        partitions.append(
            StagePartition(
                stage_id=stage_id,
                num_stages=num_stages,
                model=model.sublayers(start, stop),
                layer_start=start,
                layer_stop=stop,
            )
        )
    return partitions

"""Bubble descriptions shared between the pipeline engine and PipeFill core.

A :class:`Bubble` is one contiguous idle window on one stage's devices
during one training iteration of the main job; a :class:`BubbleCycle` is the
per-iteration repeating sequence of bubbles on a device, which is exactly
what the pipeline engine hands to the Fill Job Executor (Section 4.3: "this
sequence of bubbles is a cycle of bubbles that repeats every minibatch
iteration of the main job").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence, Tuple

from repro.pipeline.instructions import BubbleKind
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class Bubble:
    """One idle window on a pipeline stage within an iteration.

    Parameters
    ----------
    kind:
        Fill-drain, fwd-bwd, or non-contiguous (the latter are not filled).
    stage_id:
        Pipeline stage the bubble occurs on.
    index:
        Position of the bubble within the iteration's bubble sequence.
    duration:
        Idle time in seconds.
    free_memory_bytes:
        Device memory available to a fill job during this bubble (after the
        main job's caches are emptied and any offloading has completed).
    start_offset:
        Time from the start of the iteration to the start of the bubble.
    """

    kind: BubbleKind
    stage_id: int
    index: int
    duration: float
    free_memory_bytes: float
    start_offset: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.duration, "duration")
        check_non_negative(self.free_memory_bytes, "free_memory_bytes")
        check_non_negative(self.start_offset, "start_offset")

    @property
    def fillable(self) -> bool:
        """Whether PipeFill fills this bubble (non-contiguous ones are skipped)."""
        return self.kind is not BubbleKind.NON_CONTIGUOUS

    def scaled(self, *, duration_scale: float = 1.0, memory_scale: float = 1.0) -> "Bubble":
        """Return a copy with scaled duration / free memory (sensitivity studies)."""
        return replace(
            self,
            duration=self.duration * duration_scale,
            free_memory_bytes=self.free_memory_bytes * memory_scale,
        )


@dataclass(frozen=True)
class BubbleCycle:
    """The repeating per-iteration sequence of bubbles on one device.

    ``period`` is the main job's iteration time: the cycle repeats with that
    period for the lifetime of the main job.
    """

    stage_id: int
    bubbles: Tuple[Bubble, ...]
    period: float

    def __post_init__(self) -> None:
        check_non_negative(self.period, "period")
        if self.period > 0 and self.total_bubble_time > self.period + 1e-9:
            raise ValueError(
                f"total bubble time {self.total_bubble_time:.4f}s exceeds the "
                f"iteration period {self.period:.4f}s"
            )

    # -- aggregate properties ---------------------------------------------

    @property
    def total_bubble_time(self) -> float:
        """Idle seconds per iteration (all bubbles, fillable or not)."""
        return sum(b.duration for b in self.bubbles)

    @property
    def fillable_bubbles(self) -> Tuple[Bubble, ...]:
        """The bubbles PipeFill will fill."""
        return tuple(b for b in self.bubbles if b.fillable)

    @property
    def fillable_time(self) -> float:
        """Idle seconds per iteration in fillable bubbles."""
        return sum(b.duration for b in self.fillable_bubbles)

    @property
    def bubble_ratio(self) -> float:
        """Fraction of the iteration spent in bubbles."""
        if self.period == 0:
            return 0.0
        return self.total_bubble_time / self.period

    @property
    def min_free_memory_bytes(self) -> float:
        """Smallest free-memory capacity across fillable bubbles (0 if none)."""
        fillable = self.fillable_bubbles
        if not fillable:
            return 0.0
        return min(b.free_memory_bytes for b in fillable)

    def __iter__(self) -> Iterator[Bubble]:
        return iter(self.bubbles)

    def __len__(self) -> int:
        return len(self.bubbles)

    # -- transformations -----------------------------------------------------

    def scaled(self, *, duration_scale: float = 1.0, memory_scale: float = 1.0) -> "BubbleCycle":
        """Scale every bubble's duration/memory (and the period accordingly).

        Scaling durations stretches the idle part of the period while the
        busy part stays fixed, which matches the Figure 10a experiment where
        the main-job model (and hence its compute *and* bubbles) grows.
        """
        busy = self.period - self.total_bubble_time
        new_bubbles = tuple(
            b.scaled(duration_scale=duration_scale, memory_scale=memory_scale)
            for b in self.bubbles
        )
        new_period = busy + sum(b.duration for b in new_bubbles)
        return BubbleCycle(stage_id=self.stage_id, bubbles=new_bubbles, period=new_period)

    def with_free_memory(self, free_memory_bytes: float) -> "BubbleCycle":
        """Return a cycle whose every bubble exposes exactly this much memory."""
        check_non_negative(free_memory_bytes, "free_memory_bytes")
        new_bubbles = tuple(
            replace(b, free_memory_bytes=free_memory_bytes) for b in self.bubbles
        )
        return BubbleCycle(stage_id=self.stage_id, bubbles=new_bubbles, period=self.period)

    @staticmethod
    def from_durations(
        durations: Sequence[float],
        free_memory_bytes: float,
        period: float,
        *,
        stage_id: int = 0,
        kind: BubbleKind = BubbleKind.FWD_BWD,
    ) -> "BubbleCycle":
        """Convenience constructor for tests and synthetic studies."""
        bubbles = tuple(
            Bubble(
                kind=kind,
                stage_id=stage_id,
                index=i,
                duration=float(d),
                free_memory_bytes=free_memory_bytes,
            )
            for i, d in enumerate(durations)
        )
        return BubbleCycle(stage_id=stage_id, bubbles=bubbles, period=period)

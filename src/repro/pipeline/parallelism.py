"""3D-parallelism configuration and pipeline-bubble arithmetic.

The paper scales a fixed-size training job (fixed global minibatch, fixed
model) across ever larger clusters by increasing the data-parallel degree,
which shrinks the number of microbatches per pipeline replica and therefore
inflates the pipeline-bubble fraction ``(p - 1) / (m + p - 1)``.  This
module owns that arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_positive


def bubble_fraction(num_stages: int, num_microbatches: int) -> float:
    """Idle-time fraction of a synchronous unidirectional pipeline schedule.

    ``(p - 1) / (m + p - 1)`` for ``p`` stages and ``m`` microbatches
    (Narayanan et al., 2021); valid for both GPipe and 1F1B.
    """
    check_positive(num_stages, "num_stages")
    check_positive(num_microbatches, "num_microbatches")
    return (num_stages - 1) / (num_microbatches + num_stages - 1)


@dataclass(frozen=True)
class ParallelConfig:
    """A (tensor, pipeline, data)-parallel training configuration.

    Parameters
    ----------
    tensor_parallel:
        Tensor-parallel degree (GPUs a layer is sharded over; intra-node).
    pipeline_stages:
        Number of pipeline stages ``p``.
    data_parallel:
        Number of pipeline replicas.
    microbatch_size:
        Samples per microbatch per replica.
    global_batch_size:
        Samples per optimizer step across all replicas (fixed by the ML
        practitioner; 1024 sequences = ~2M-4M tokens in the paper).
    """

    tensor_parallel: int
    pipeline_stages: int
    data_parallel: int
    microbatch_size: int
    global_batch_size: int

    def __post_init__(self) -> None:
        check_positive(self.tensor_parallel, "tensor_parallel")
        check_positive(self.pipeline_stages, "pipeline_stages")
        check_positive(self.data_parallel, "data_parallel")
        check_positive(self.microbatch_size, "microbatch_size")
        check_positive(self.global_batch_size, "global_batch_size")
        per_replica = self.global_batch_size / self.data_parallel
        if per_replica < self.microbatch_size:
            raise ValueError(
                f"global_batch_size {self.global_batch_size} split over "
                f"data_parallel {self.data_parallel} leaves {per_replica} samples "
                f"per replica, fewer than the microbatch size {self.microbatch_size}"
            )
        if per_replica % self.microbatch_size != 0:
            raise ValueError(
                "per-replica batch must be a multiple of the microbatch size; "
                f"got {per_replica} samples per replica with microbatch {self.microbatch_size}"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def num_devices(self) -> int:
        """Total accelerators used by the job."""
        return self.tensor_parallel * self.pipeline_stages * self.data_parallel

    @property
    def devices_per_replica(self) -> int:
        """Accelerators per pipeline replica."""
        return self.tensor_parallel * self.pipeline_stages

    @property
    def samples_per_replica(self) -> int:
        """Samples each replica processes per optimizer step."""
        return self.global_batch_size // self.data_parallel

    @property
    def num_microbatches(self) -> int:
        """Microbatches per replica per optimizer step (``m``)."""
        return self.samples_per_replica // self.microbatch_size

    @property
    def bubble_fraction(self) -> float:
        """Pipeline-bubble fraction ``(p-1)/(m+p-1)`` of this configuration."""
        return bubble_fraction(self.pipeline_stages, self.num_microbatches)

    def with_data_parallel(self, data_parallel: int) -> "ParallelConfig":
        """Return the same job scaled to a different data-parallel degree."""
        return replace(self, data_parallel=data_parallel)

    def describe(self) -> str:
        """Short human-readable tag, e.g. ``"tp8-pp16-dp64 (m=8)"``."""
        return (
            f"tp{self.tensor_parallel}-pp{self.pipeline_stages}-dp{self.data_parallel}"
            f" (m={self.num_microbatches})"
        )


def microbatches_for_cluster(
    base: ParallelConfig, num_devices: int
) -> ParallelConfig:
    """Scale ``base`` onto ``num_devices`` accelerators by raising data parallelism.

    The tensor/pipeline degrees and the global batch size stay fixed (the
    paper's scaling methodology); the data-parallel degree becomes
    ``num_devices / devices_per_replica``, which must divide evenly and keep
    at least one microbatch per replica.
    """
    check_positive(num_devices, "num_devices")
    per_replica = base.devices_per_replica
    if num_devices % per_replica != 0:
        raise ValueError(
            f"num_devices {num_devices} is not a multiple of the replica size {per_replica}"
        )
    dp = num_devices // per_replica
    return base.with_data_parallel(dp)

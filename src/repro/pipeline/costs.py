"""Analytical per-stage cost model for the pipeline-parallel main job.

Resolves a (model, parallel configuration, hardware) triple into the
per-microbatch forward/backward times of each stage, the communication
times, the main job's device-memory footprint, and the free memory a fill
job would see during a bubble.  These are the quantities the paper obtains
by profiling the real DeepSpeed engine and that seed both the instrumented
engine and the large-scale simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hardware.device import DeviceSpec
from repro.hardware.node import NodeSpec, P3_16XLARGE
from repro.models.base import ModelSpec
from repro.models.efficiency import DEFAULT_EFFICIENCY, EfficiencyModel
from repro.models.memory import ADAM_OPTIMIZER_BYTES_PER_PARAM, GRAD_BYTES_PER_PARAM
from repro.pipeline.parallelism import ParallelConfig
from repro.pipeline.partition import StagePartition, partition_layers
from repro.utils.units import GIB
from repro.utils.validation import check_non_negative, check_positive

#: Bytes of framework runtime buffers held per device by the main job
#: (NCCL rings, DeepSpeed communication/fusion buffers, dataloader staging,
#: allocator fragmentation reserve).  Calibrated so the 5B physical-cluster
#: main job exposes ~4.5 GB of free memory during bubbles, the value the
#: paper measures on its testbed (Section 6.1).
DEFAULT_RUNTIME_BUFFER_BYTES = 4.5 * GIB


@dataclass(frozen=True)
class StageCostModel:
    """Resolved per-microbatch costs of one pipeline stage on its devices."""

    stage: StagePartition
    t_forward: float
    t_backward: float
    t_send_activation: float
    t_recv_activation: float
    t_grad_reduce: float
    t_optimizer_step: float
    main_job_memory_bytes: float
    bubble_free_memory_bytes: float
    params_per_device: float

    @property
    def t_microbatch(self) -> float:
        """Forward plus backward time of one microbatch on this stage."""
        return self.t_forward + self.t_backward


@dataclass(frozen=True)
class MainJobCosts:
    """Cost model of every stage of the main job plus job-level aggregates."""

    model: ModelSpec
    parallel: ParallelConfig
    device: DeviceSpec
    stages: tuple[StageCostModel, ...]

    @property
    def num_stages(self) -> int:
        """Pipeline depth ``p``."""
        return self.parallel.pipeline_stages

    @property
    def max_t_forward(self) -> float:
        """Slowest stage's forward time (sets the pipeline clock)."""
        return max(s.t_forward for s in self.stages)

    @property
    def max_t_backward(self) -> float:
        """Slowest stage's backward time."""
        return max(s.t_backward for s in self.stages)

    @property
    def iteration_time(self) -> float:
        """Time of one optimizer step (one minibatch) for a GPipe-like schedule.

        ``(m + p - 1) * (t_f + t_b)`` on the slowest stage, plus the
        gradient all-reduce and optimizer step at the iteration boundary.
        """
        m = self.parallel.num_microbatches
        p = self.parallel.pipeline_stages
        pipeline = (m + p - 1) * (self.max_t_forward + self.max_t_backward)
        tail = max(s.t_grad_reduce + s.t_optimizer_step for s in self.stages)
        return pipeline + tail

    @property
    def compute_time_per_iteration(self) -> float:
        """Busy time of one iteration on the slowest stage."""
        m = self.parallel.num_microbatches
        return m * (self.max_t_forward + self.max_t_backward) + max(
            s.t_grad_reduce + s.t_optimizer_step for s in self.stages
        )

    @property
    def model_flops_per_iteration(self) -> float:
        """Total model FLOPs (fwd + bwd) of one optimizer step across the job."""
        return self.model.train_flops_per_sample * self.parallel.global_batch_size

    @property
    def tflops_per_device(self) -> float:
        """Sustained model TFLOP/s per device over a full iteration."""
        total_time = self.iteration_time
        devices = self.parallel.num_devices
        return self.model_flops_per_iteration / total_time / devices / 1e12


def _stage_costs(
    stage: StagePartition,
    parallel: ParallelConfig,
    node: NodeSpec,
    efficiency: EfficiencyModel,
    runtime_buffer_bytes: float,
) -> StageCostModel:
    device = node.device_spec
    tp = parallel.tensor_parallel
    mb = parallel.microbatch_size
    model = stage.model

    # -- compute ------------------------------------------------------------
    eff = efficiency.main_job_efficiency
    fwd_flops = mb * model.fwd_flops_per_sample / tp
    bwd_flops = mb * model.bwd_flops_per_sample / tp
    t_forward = fwd_flops / (device.peak_flops * eff)
    t_backward = bwd_flops / (device.peak_flops * eff)

    # Tensor-parallel all-reduces: two per transformer block in the forward
    # pass and two in the backward pass, of one activation tensor each.
    boundary_bytes = mb * max(l.output_bytes_per_sample for l in model.layers)
    if tp > 1:
        per_block = node.intra_node_link.allreduce_time(boundary_bytes, tp)
        t_forward += 2.0 * model.num_layers * per_block
        t_backward += 2.0 * model.num_layers * per_block

    # -- pipeline p2p communication ------------------------------------------
    t_send = node.network_link.transfer_time(boundary_bytes / tp)
    t_recv = t_send

    # -- iteration-boundary work ----------------------------------------------
    params_per_device = model.param_count / tp
    grad_bytes = params_per_device * GRAD_BYTES_PER_PARAM
    t_grad_reduce = (
        node.network_link.allreduce_time(grad_bytes, parallel.data_parallel)
        if parallel.data_parallel > 1
        else 0.0
    )
    opt_flops = 10.0 * params_per_device
    t_optimizer = opt_flops / (device.peak_flops * 0.04)

    # -- memory ---------------------------------------------------------------
    # The main job trains with activation checkpointing (standard for GPipe
    # at this scale): per in-flight microbatch it stores only the stage's
    # boundary activations, and the recomputation working set of one layer
    # is transient (released by empty_cache() before a bubble is filled).
    param_bytes = params_per_device * model.dtype_bytes
    opt_bytes = params_per_device * ADAM_OPTIMIZER_BYTES_PER_PARAM
    boundary_per_microbatch = boundary_bytes / tp
    in_flight = parallel.num_microbatches
    stored_activations = in_flight * boundary_per_microbatch
    recompute_workspace = mb * max(l.activation_bytes_per_sample for l in model.layers) / tp

    main_job_memory = (
        param_bytes
        + grad_bytes
        + opt_bytes
        + stored_activations
        + recompute_workspace
        + runtime_buffer_bytes
    )
    # During a bubble the recompute workspace and cached transient buffers
    # have been released (the engine calls empty_cache() before signalling
    # the executor), so the fill job sees the difference to device capacity.
    resident_during_bubble = main_job_memory - recompute_workspace
    bubble_free = max(0.0, device.usable_memory_bytes - resident_during_bubble)

    return StageCostModel(
        stage=stage,
        t_forward=t_forward,
        t_backward=t_backward,
        t_send_activation=t_send,
        t_recv_activation=t_recv,
        t_grad_reduce=t_grad_reduce,
        t_optimizer_step=t_optimizer,
        main_job_memory_bytes=main_job_memory,
        bubble_free_memory_bytes=bubble_free,
        params_per_device=params_per_device,
    )


def main_job_costs(
    model: ModelSpec,
    parallel: ParallelConfig,
    *,
    node: NodeSpec = P3_16XLARGE,
    efficiency: EfficiencyModel = DEFAULT_EFFICIENCY,
    runtime_buffer_bytes: float = DEFAULT_RUNTIME_BUFFER_BYTES,
) -> MainJobCosts:
    """Resolve the full main-job cost model for a parallel configuration."""
    check_non_negative(runtime_buffer_bytes, "runtime_buffer_bytes")
    check_positive(parallel.num_microbatches, "num_microbatches")
    stages = partition_layers(model, parallel.pipeline_stages)
    stage_costs: List[StageCostModel] = [
        _stage_costs(stage, parallel, node, efficiency, runtime_buffer_bytes)
        for stage in stages
    ]
    return MainJobCosts(
        model=model,
        parallel=parallel,
        device=node.device_spec,
        stages=tuple(stage_costs),
    )

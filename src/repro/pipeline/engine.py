"""Instrumented pipeline engine.

The engine replays the per-stage instruction streams of a pipeline schedule
against the analytical stage cost model, resolving cross-stage
send/receive dependencies, and records every idle window on every stage.
Idle windows that follow a :class:`~repro.pipeline.instructions.PipelineBubble`
instruction are attributed to that bubble (fill-drain or fwd-bwd); all other
waits are the small non-contiguous gaps that PipeFill does not fill.

This is the "physical" fidelity level of the reproduction: the large-scale
experiments seed the event-driven simulator with bubble cycles produced
here, mirroring how the paper seeds its simulator with profiles collected
from the real DeepSpeed engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.models.base import ModelSpec
from repro.pipeline.bubbles import Bubble, BubbleCycle
from repro.pipeline.costs import MainJobCosts, StageCostModel
from repro.pipeline.instructions import (
    BubbleKind,
    Instruction,
    InstructionKind,
    PipelineBubble,
)
from repro.pipeline.schedules import PipelineSchedule, build_schedule
from repro.utils.units import SECONDS_PER_DAY
from repro.utils.validation import check_positive

#: Idle windows shorter than this are measurement noise, not bubbles.
_IDLE_EPSILON = 1e-9


@dataclass(frozen=True)
class IdleWindow:
    """One recorded idle period on a stage."""

    iteration: int
    kind: BubbleKind
    start: float
    duration: float


@dataclass
class StageTimeline:
    """Execution record of one stage across the simulated iterations."""

    stage_id: int
    iteration_starts: List[float] = field(default_factory=list)
    iteration_ends: List[float] = field(default_factory=list)
    idle_windows: List[IdleWindow] = field(default_factory=list)
    busy_time: float = 0.0

    def idle_in_iteration(self, iteration: int) -> List[IdleWindow]:
        """Idle windows recorded during ``iteration``."""
        return [w for w in self.idle_windows if w.iteration == iteration]

    def iteration_duration(self, iteration: int) -> float:
        """Wall-clock duration of ``iteration`` on this stage."""
        return self.iteration_ends[iteration] - self.iteration_starts[iteration]


@dataclass(frozen=True)
class MainJobStats:
    """Aggregate statistics of the replayed main job."""

    model: ModelSpec
    costs: MainJobCosts
    schedule_name: str
    iteration_time: float
    stage_bubble_times: Tuple[float, ...]
    stage_fillable_times: Tuple[float, ...]

    @property
    def num_stages(self) -> int:
        """Pipeline depth."""
        return len(self.stage_bubble_times)

    @property
    def bubble_ratio(self) -> float:
        """Mean fraction of the iteration each stage spends idle."""
        return float(sum(self.stage_bubble_times)) / (self.num_stages * self.iteration_time)

    @property
    def samples_per_second(self) -> float:
        """Training throughput in samples/s across the whole job."""
        return self.costs.parallel.global_batch_size / self.iteration_time

    @property
    def tflops_per_device(self) -> float:
        """Sustained model TFLOP/s per device, averaged over the iteration."""
        return (
            self.costs.model_flops_per_iteration
            / self.iteration_time
            / self.costs.parallel.num_devices
            / 1e12
        )

    def days_to_train(self, total_tokens: float) -> float:
        """Wall-clock days to consume ``total_tokens`` of training data."""
        check_positive(total_tokens, "total_tokens")
        seq_len = self.model.reference_seq_len or 2048
        total_samples = total_tokens / seq_len
        seconds = total_samples / self.samples_per_second
        return seconds / SECONDS_PER_DAY


class InstrumentedPipelineEngine:
    """Replays a pipeline schedule and characterises its bubbles.

    Parameters
    ----------
    costs:
        Resolved main-job cost model (stages, comm times, memory).
    schedule:
        ``"gpipe"`` or ``"1f1b"`` (or an already-built schedule object).
    num_iterations:
        Iterations to replay; bubbles are extracted from the second-to-last
        (steady-state) iteration.
    """

    def __init__(
        self,
        costs: MainJobCosts,
        schedule: str | PipelineSchedule = "gpipe",
        *,
        num_iterations: int = 4,
    ) -> None:
        if num_iterations < 3:
            raise ValueError("need at least 3 iterations to reach steady state")
        self.costs = costs
        if isinstance(schedule, str):
            schedule = build_schedule(
                schedule,
                costs.parallel.pipeline_stages,
                costs.parallel.num_microbatches,
            )
        if schedule.num_stages != costs.parallel.pipeline_stages:
            raise ValueError("schedule stage count does not match the parallel config")
        self.schedule = schedule
        self.num_iterations = num_iterations

    # -- instruction timing ---------------------------------------------------

    def _instruction_duration(
        self,
        instr: Instruction,
        stage_costs: StageCostModel,
        extra_bubble_busy: Mapping[Tuple[int, BubbleKind], float],
        stage_id: int,
    ) -> float:
        kind = instr.kind
        if kind is InstructionKind.FORWARD:
            return stage_costs.t_forward
        if kind is InstructionKind.BACKWARD:
            return stage_costs.t_backward
        if kind in (InstructionKind.SEND_ACTIVATION, InstructionKind.SEND_GRAD):
            return stage_costs.t_send_activation
        if kind in (InstructionKind.RECV_ACTIVATION, InstructionKind.RECV_GRAD):
            return 0.0
        if kind is InstructionKind.REDUCE_GRADS:
            return stage_costs.t_grad_reduce
        if kind is InstructionKind.OPTIMIZER_STEP:
            return stage_costs.t_optimizer_step
        if kind is InstructionKind.BUBBLE:
            assert isinstance(instr, PipelineBubble)
            return extra_bubble_busy.get((stage_id, instr.bubble_kind), 0.0)
        raise ValueError(f"unknown instruction kind {kind!r}")  # pragma: no cover

    # -- replay ---------------------------------------------------------------

    def run(
        self,
        *,
        extra_bubble_busy: Optional[Mapping[Tuple[int, BubbleKind], float]] = None,
    ) -> List[StageTimeline]:
        """Replay the schedule and return every stage's timeline.

        ``extra_bubble_busy`` forces a stage to stay busy for the given
        number of seconds at each occurrence of the given bubble instruction;
        this is how the bubble-duration probe and fill-overrun experiments
        inject work into bubbles.
        """
        extra_bubble_busy = dict(extra_bubble_busy or {})
        p = self.schedule.num_stages
        stage_instrs: List[List[Tuple[int, Instruction]]] = []
        for s in range(p):
            per_iter = self.schedule.stage_instructions(s)
            stage_instrs.append(
                [(it, instr) for it in range(self.num_iterations) for instr in per_iter]
            )

        timelines = [StageTimeline(stage_id=s) for s in range(p)]
        clocks = [0.0] * p
        pcs = [0] * p
        pending_bubble: List[Optional[BubbleKind]] = [None] * p
        current_iter = [-1] * p
        send_act_done: Dict[Tuple[int, int, int], float] = {}
        send_grad_done: Dict[Tuple[int, int, int], float] = {}

        def dependency_time(stage: int, iteration: int, instr: Instruction) -> Optional[float]:
            """Completion time of the event this instruction waits on.

            Returns ``None`` when the event has not happened yet (the
            instruction is not ready to execute).
            """
            kind = instr.kind
            if kind is InstructionKind.RECV_ACTIVATION:
                return send_act_done.get((iteration, getattr(instr, "microbatch"), stage - 1))
            if kind is InstructionKind.RECV_GRAD:
                return send_grad_done.get((iteration, getattr(instr, "microbatch"), stage + 1))
            return clocks[stage]

        total = sum(len(instrs) for instrs in stage_instrs)
        executed = 0
        while executed < total:
            progressed = False
            for s in range(p):
                stage_costs = self.costs.stages[s]
                while pcs[s] < len(stage_instrs[s]):
                    iteration, instr = stage_instrs[s][pcs[s]]
                    dep = dependency_time(s, iteration, instr)
                    if dep is None:
                        break
                    timeline = timelines[s]
                    if iteration != current_iter[s]:
                        # First instruction of a new iteration on this stage.
                        while len(timeline.iteration_starts) <= iteration:
                            timeline.iteration_starts.append(clocks[s])
                        current_iter[s] = iteration
                    start = max(clocks[s], dep)
                    idle = start - clocks[s]
                    if idle > _IDLE_EPSILON:
                        kind = pending_bubble[s] or BubbleKind.NON_CONTIGUOUS
                        timeline.idle_windows.append(
                            IdleWindow(iteration=iteration, kind=kind, start=clocks[s], duration=idle)
                        )
                    duration = self._instruction_duration(instr, stage_costs, extra_bubble_busy, s)
                    end = start + duration
                    timeline.busy_time += duration
                    clocks[s] = end
                    while len(timeline.iteration_ends) <= iteration:
                        timeline.iteration_ends.append(end)
                    timeline.iteration_ends[iteration] = end

                    if instr.kind is InstructionKind.SEND_ACTIVATION:
                        send_act_done[(iteration, getattr(instr, "microbatch"), s)] = end
                    elif instr.kind is InstructionKind.SEND_GRAD:
                        send_grad_done[(iteration, getattr(instr, "microbatch"), s)] = end

                    if instr.kind is InstructionKind.BUBBLE:
                        assert isinstance(instr, PipelineBubble)
                        pending_bubble[s] = instr.bubble_kind
                    else:
                        pending_bubble[s] = None

                    pcs[s] += 1
                    executed += 1
                    progressed = True
            if not progressed:
                raise RuntimeError(
                    "pipeline replay deadlocked; the schedule's send/recv pairs are inconsistent"
                )
        return timelines

    # -- analysis -------------------------------------------------------------

    @property
    def steady_iteration(self) -> int:
        """Index of the iteration used for steady-state measurements."""
        return self.num_iterations - 2

    def _steady_period(self, timelines: Sequence[StageTimeline]) -> float:
        it = self.steady_iteration
        periods = [
            t.iteration_starts[it + 1] - t.iteration_starts[it]
            for t in timelines
            if len(t.iteration_starts) > it + 1
        ]
        return max(periods)

    def measure(
        self,
        *,
        extra_bubble_busy: Optional[Mapping[Tuple[int, BubbleKind], float]] = None,
    ) -> MainJobStats:
        """Replay and summarise the main job (iteration time, bubble ratio, ...)."""
        timelines = self.run(extra_bubble_busy=extra_bubble_busy)
        period = self._steady_period(timelines)
        it = self.steady_iteration
        bubble_times = []
        fillable_times = []
        for t in timelines:
            windows = t.idle_in_iteration(it) + [
                w for w in t.idle_in_iteration(it + 1) if w.kind is BubbleKind.FILL_DRAIN
            ]
            # The fill-drain window of an iteration is recorded at the start
            # of the *next* one; count it toward this stage's cycle once.
            own = t.idle_in_iteration(it)
            total_idle = sum(w.duration for w in own)
            fillable = sum(
                w.duration for w in own if w.kind is not BubbleKind.NON_CONTIGUOUS
            )
            bubble_times.append(total_idle)
            fillable_times.append(fillable)
            del windows
        return MainJobStats(
            model=self.costs.model,
            costs=self.costs,
            schedule_name=self.schedule.name,
            iteration_time=period,
            stage_bubble_times=tuple(bubble_times),
            stage_fillable_times=tuple(fillable_times),
        )

    def bubble_cycle(self, stage_id: int, timelines: Optional[Sequence[StageTimeline]] = None) -> BubbleCycle:
        """Extract the steady-state bubble cycle of ``stage_id``.

        The cycle contains one :class:`Bubble` per idle window of the
        steady-state iteration, annotated with the free memory the cost
        model predicts for the stage's devices during bubbles.
        """
        if timelines is None:
            timelines = self.run()
        timeline = timelines[stage_id]
        it = self.steady_iteration
        period = self._steady_period(timelines)
        free_mem = self.costs.stages[stage_id].bubble_free_memory_bytes
        iteration_start = timeline.iteration_starts[it]
        bubbles = []
        for index, window in enumerate(timeline.idle_in_iteration(it)):
            bubbles.append(
                Bubble(
                    kind=window.kind,
                    stage_id=stage_id,
                    index=index,
                    duration=window.duration,
                    free_memory_bytes=free_mem,
                    start_offset=max(0.0, window.start - iteration_start),
                )
            )
        return BubbleCycle(stage_id=stage_id, bubbles=tuple(bubbles), period=period)

    def bubble_cycles(self) -> List[BubbleCycle]:
        """Bubble cycles of every stage, from a single replay."""
        timelines = self.run()
        return [self.bubble_cycle(s, timelines) for s in range(self.schedule.num_stages)]

    def measure_slowdown(
        self, extra_bubble_busy: Mapping[Tuple[int, BubbleKind], float]
    ) -> float:
        """Relative main-job iteration-time increase caused by injected bubble work.

        Used by the bubble-duration probe: as long as the injected busy time
        stays within the natural bubble, the returned slowdown is ~0.
        """
        baseline = self.measure().iteration_time
        loaded = self.measure(extra_bubble_busy=extra_bubble_busy).iteration_time
        return (loaded - baseline) / baseline

"""Pipeline instruction IR.

Existing pipeline engines (DeepSpeed's ``PipelineEngine``, Megatron's
schedules) execute a per-stage sequence of instructions: forward/backward
compute on specific microbatches, activation/gradient sends and receives,
gradient reduction and the optimizer step.  PipeFill adds one more
instruction -- :class:`PipelineBubble` -- marking where a large bubble is
expected, which the instrumented engine uses to profile bubble durations and
to signal the fill-job executor.

Instructions are plain frozen dataclasses; the engine resolves their
durations through the stage cost model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class InstructionKind(str, enum.Enum):
    """Discriminator for pipeline instructions."""

    FORWARD = "forward"
    BACKWARD = "backward"
    SEND_ACTIVATION = "send_activation"
    RECV_ACTIVATION = "recv_activation"
    SEND_GRAD = "send_grad"
    RECV_GRAD = "recv_grad"
    REDUCE_GRADS = "reduce_grads"
    OPTIMIZER_STEP = "optimizer_step"
    BUBBLE = "bubble"


class BubbleKind(str, enum.Enum):
    """Which of the schedule's bubbles a bubble instruction marks.

    The paper distinguishes the *fill-drain* bubble (between the drain of
    one minibatch and the fill of the next) from the *fwd-bwd* bubble
    (between pipeline saturation of the forward pass and the arrival of the
    first backward), plus 1F1B's small non-contiguous bubbles which PipeFill
    deliberately does not fill.
    """

    FILL_DRAIN = "fill_drain"
    FWD_BWD = "fwd_bwd"
    NON_CONTIGUOUS = "non_contiguous"


@dataclass(frozen=True)
class Instruction:
    """Base class for all pipeline instructions."""

    kind: InstructionKind


@dataclass(frozen=True)
class ForwardPass(Instruction):
    """Run the stage's forward computation for one microbatch."""

    microbatch: int = 0
    kind: InstructionKind = InstructionKind.FORWARD


@dataclass(frozen=True)
class BackwardPass(Instruction):
    """Run the stage's backward computation for one microbatch."""

    microbatch: int = 0
    kind: InstructionKind = InstructionKind.BACKWARD


@dataclass(frozen=True)
class SendActivation(Instruction):
    """Send a microbatch's output activations to the next stage."""

    microbatch: int = 0
    kind: InstructionKind = InstructionKind.SEND_ACTIVATION


@dataclass(frozen=True)
class RecvActivation(Instruction):
    """Receive a microbatch's input activations from the previous stage."""

    microbatch: int = 0
    kind: InstructionKind = InstructionKind.RECV_ACTIVATION


@dataclass(frozen=True)
class SendGrad(Instruction):
    """Send a microbatch's input gradients to the previous stage."""

    microbatch: int = 0
    kind: InstructionKind = InstructionKind.SEND_GRAD


@dataclass(frozen=True)
class RecvGrad(Instruction):
    """Receive a microbatch's output gradients from the next stage."""

    microbatch: int = 0
    kind: InstructionKind = InstructionKind.RECV_GRAD


@dataclass(frozen=True)
class ReduceGrads(Instruction):
    """Data-parallel all-reduce of the stage's gradients."""

    kind: InstructionKind = InstructionKind.REDUCE_GRADS


@dataclass(frozen=True)
class OptimizerStep(Instruction):
    """Apply the optimizer update for the stage's parameters."""

    kind: InstructionKind = InstructionKind.OPTIMIZER_STEP


@dataclass(frozen=True)
class PipelineBubble(Instruction):
    """PipeFill's pipeline-bubble instruction.

    Marks a point in the schedule where the stage is expected to idle.  The
    instrumented engine measures the actual idle duration here (via the
    doubling probe during profiling iterations) and, once characterised,
    signals the fill-job executor at this point.
    """

    bubble_kind: BubbleKind = BubbleKind.FWD_BWD
    index: int = 0
    expected_duration: Optional[float] = None
    kind: InstructionKind = InstructionKind.BUBBLE

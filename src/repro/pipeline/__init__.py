"""Pipeline-parallel training substrate.

Implements the parts of Megatron/DeepSpeed-style 3D-parallel training that
PipeFill builds on: parallelism configuration and bubble-fraction math,
layer-to-stage partitioning, per-stage analytical cost models, GPipe and
1F1B schedule generation as explicit instruction streams (including the
*pipeline bubble instruction* PipeFill adds), and an instrumented pipeline
engine that replays a stage's instruction stream to produce its timeline,
memory occupancy and bubble windows.
"""

from repro.pipeline.parallelism import (
    ParallelConfig,
    bubble_fraction,
    microbatches_for_cluster,
)
from repro.pipeline.partition import partition_layers, StagePartition
from repro.pipeline.costs import StageCostModel, MainJobCosts, main_job_costs
from repro.pipeline.instructions import (
    Instruction,
    InstructionKind,
    ForwardPass,
    BackwardPass,
    SendActivation,
    RecvActivation,
    SendGrad,
    RecvGrad,
    ReduceGrads,
    OptimizerStep,
    PipelineBubble,
    BubbleKind,
)
from repro.pipeline.bubbles import Bubble, BubbleCycle
from repro.pipeline.schedules import (
    PipelineSchedule,
    GPipeSchedule,
    OneFOneBSchedule,
    build_schedule,
    SCHEDULES,
)
from repro.pipeline.engine import (
    InstrumentedPipelineEngine,
    StageTimeline,
    MainJobStats,
)

__all__ = [
    "ParallelConfig",
    "bubble_fraction",
    "microbatches_for_cluster",
    "partition_layers",
    "StagePartition",
    "StageCostModel",
    "MainJobCosts",
    "main_job_costs",
    "Instruction",
    "InstructionKind",
    "ForwardPass",
    "BackwardPass",
    "SendActivation",
    "RecvActivation",
    "SendGrad",
    "RecvGrad",
    "ReduceGrads",
    "OptimizerStep",
    "PipelineBubble",
    "BubbleKind",
    "Bubble",
    "BubbleCycle",
    "PipelineSchedule",
    "GPipeSchedule",
    "OneFOneBSchedule",
    "build_schedule",
    "SCHEDULES",
    "InstrumentedPipelineEngine",
    "StageTimeline",
    "MainJobStats",
]

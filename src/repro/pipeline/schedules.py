"""Pipeline schedule generators (GPipe and 1F1B) with bubble instructions.

A schedule turns (number of stages ``p``, number of microbatches ``m``) into
a per-stage ordered list of :mod:`repro.pipeline.instructions`.  PipeFill's
pipeline-bubble instructions are inserted where each schedule's two large
bubbles are expected:

* the *fwd-bwd* bubble, while a stage waits for the first backward gradient
  after finishing its forward work, and
* the *fill-drain* bubble, spanning the drain of one minibatch and the fill
  of the next (observed at the first activation receive of an iteration).

Both schedules also expose the analytic per-stage bubble durations from
Section 4.5 of the paper, which the engine's measured timelines are checked
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Type

from repro.pipeline.instructions import (
    BackwardPass,
    BubbleKind,
    ForwardPass,
    Instruction,
    OptimizerStep,
    PipelineBubble,
    RecvActivation,
    RecvGrad,
    ReduceGrads,
    SendActivation,
    SendGrad,
)
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PipelineSchedule:
    """Base class: a unidirectional synchronous pipeline schedule."""

    num_stages: int
    num_microbatches: int

    def __post_init__(self) -> None:
        check_positive(self.num_stages, "num_stages")
        check_positive(self.num_microbatches, "num_microbatches")

    # -- to be provided by concrete schedules --------------------------------

    name: str = "base"

    def stage_instructions(self, stage_id: int) -> List[Instruction]:
        """Return the ordered instruction list of ``stage_id`` for one iteration."""
        raise NotImplementedError

    def fwd_bwd_bubble_duration(self, stage_id: int, t_fwd: float, t_bwd: float) -> float:
        """Analytic duration of the stage's fwd-bwd bubble."""
        raise NotImplementedError

    def fill_drain_bubble_duration(self, stage_id: int, t_fwd: float, t_bwd: float) -> float:
        """Analytic duration of the stage's fill-drain bubble.

        Identical for GPipe and 1F1B (the paper, Section 4.5): the stage
        idles ``stage_id * (t_fwd + t_bwd)`` across the iteration boundary.
        """
        self._check_stage(stage_id)
        return stage_id * (t_fwd + t_bwd)

    def total_bubble_duration(self, stage_id: int, t_fwd: float, t_bwd: float) -> float:
        """Total idle time of the stage per iteration.

        For unidirectional synchronous schedules this is
        ``(p - 1) * (t_fwd + t_bwd)`` regardless of the schedule (the paper
        notes the *total* bubble time of GPipe and 1F1B is the same; 1F1B
        merely fragments part of it into non-contiguous pieces).
        """
        self._check_stage(stage_id)
        return (self.num_stages - 1) * (t_fwd + t_bwd)

    def non_contiguous_bubble_duration(
        self, stage_id: int, t_fwd: float, t_bwd: float
    ) -> float:
        """Idle time in small, unfillable gaps (zero for GPipe)."""
        return self.total_bubble_duration(stage_id, t_fwd, t_bwd) - (
            self.fwd_bwd_bubble_duration(stage_id, t_fwd, t_bwd)
            + self.fill_drain_bubble_duration(stage_id, t_fwd, t_bwd)
        )

    # -- helpers --------------------------------------------------------------

    def _check_stage(self, stage_id: int) -> None:
        if not 0 <= stage_id < self.num_stages:
            raise ValueError(
                f"stage_id {stage_id} out of range [0, {self.num_stages})"
            )

    @property
    def is_first_last(self) -> bool:  # pragma: no cover - trivial
        return self.num_stages == 1

    def _boundary_tail(self, stage_id: int) -> List[Instruction]:
        return [ReduceGrads(), OptimizerStep()]


@dataclass(frozen=True)
class GPipeSchedule(PipelineSchedule):
    """GPipe (all-forwards-then-all-backwards) schedule."""

    name: str = "gpipe"

    def stage_instructions(self, stage_id: int) -> List[Instruction]:
        self._check_stage(stage_id)
        p, m = self.num_stages, self.num_microbatches
        instrs: List[Instruction] = []
        if stage_id > 0:
            instrs.append(PipelineBubble(bubble_kind=BubbleKind.FILL_DRAIN, index=0))
        for mb in range(m):
            if stage_id > 0:
                instrs.append(RecvActivation(microbatch=mb))
            instrs.append(ForwardPass(microbatch=mb))
            if stage_id < p - 1:
                instrs.append(SendActivation(microbatch=mb))
        if stage_id < p - 1:
            instrs.append(PipelineBubble(bubble_kind=BubbleKind.FWD_BWD, index=1))
        for mb in reversed(range(m)):
            if stage_id < p - 1:
                instrs.append(RecvGrad(microbatch=mb))
            instrs.append(BackwardPass(microbatch=mb))
            if stage_id > 0:
                instrs.append(SendGrad(microbatch=mb))
        instrs.extend(self._boundary_tail(stage_id))
        return instrs

    def fwd_bwd_bubble_duration(self, stage_id: int, t_fwd: float, t_bwd: float) -> float:
        """``(p - stage - 1) * (t_fwd + t_bwd)`` (Section 4.5)."""
        self._check_stage(stage_id)
        return (self.num_stages - stage_id - 1) * (t_fwd + t_bwd)


@dataclass(frozen=True)
class OneFOneBSchedule(PipelineSchedule):
    """1F1B (PipeDream-Flush) schedule."""

    name: str = "1f1b"

    def _num_warmup(self, stage_id: int) -> int:
        return min(self.num_microbatches, self.num_stages - stage_id - 1)

    def stage_instructions(self, stage_id: int) -> List[Instruction]:
        self._check_stage(stage_id)
        p, m = self.num_stages, self.num_microbatches
        warmup = self._num_warmup(stage_id)
        steady = m - warmup
        instrs: List[Instruction] = []
        if stage_id > 0:
            instrs.append(PipelineBubble(bubble_kind=BubbleKind.FILL_DRAIN, index=0))
        # Warm-up forwards.
        for mb in range(warmup):
            if stage_id > 0:
                instrs.append(RecvActivation(microbatch=mb))
            instrs.append(ForwardPass(microbatch=mb))
            if stage_id < p - 1:
                instrs.append(SendActivation(microbatch=mb))
        # Steady 1F1B phase: one forward then one backward per step.
        first_backward = True
        for k in range(steady):
            fwd_mb = warmup + k
            if stage_id > 0:
                instrs.append(RecvActivation(microbatch=fwd_mb))
            instrs.append(ForwardPass(microbatch=fwd_mb))
            if stage_id < p - 1:
                instrs.append(SendActivation(microbatch=fwd_mb))
            if stage_id < p - 1:
                if first_backward:
                    instrs.append(PipelineBubble(bubble_kind=BubbleKind.FWD_BWD, index=1))
                    first_backward = False
                instrs.append(RecvGrad(microbatch=k))
            instrs.append(BackwardPass(microbatch=k))
            if stage_id > 0:
                instrs.append(SendGrad(microbatch=k))
        # Cool-down backwards.
        for k in range(steady, m):
            if stage_id < p - 1:
                if first_backward:
                    instrs.append(PipelineBubble(bubble_kind=BubbleKind.FWD_BWD, index=1))
                    first_backward = False
                instrs.append(RecvGrad(microbatch=k))
            instrs.append(BackwardPass(microbatch=k))
            if stage_id > 0:
                instrs.append(SendGrad(microbatch=k))
        instrs.extend(self._boundary_tail(stage_id))
        return instrs

    def fwd_bwd_bubble_duration(self, stage_id: int, t_fwd: float, t_bwd: float) -> float:
        """``(p - s - 1) * t_bwd + max(0, p - s - m) * t_fwd`` (Section 4.5)."""
        self._check_stage(stage_id)
        p, m = self.num_stages, self.num_microbatches
        return (p - stage_id - 1) * t_bwd + max(0, p - stage_id - m) * t_fwd


SCHEDULES: Dict[str, Type[PipelineSchedule]] = {
    "gpipe": GPipeSchedule,
    "1f1b": OneFOneBSchedule,
}


def build_schedule(name: str, num_stages: int, num_microbatches: int) -> PipelineSchedule:
    """Build the named schedule (``"gpipe"`` or ``"1f1b"``)."""
    try:
        cls = SCHEDULES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown schedule {name!r}; known: {sorted(SCHEDULES)}") from None
    return cls(num_stages=num_stages, num_microbatches=num_microbatches)

"""The ``repro`` command-line interface: ``python -m repro <command>``.

The CLI is a thin argparse shell over the public library API
(:mod:`repro.api`): every command builds an
:class:`~repro.api.Experiment` and prints/serialises its typed result, so
anything the CLI does is equally available to notebooks and services, and
all ``--json`` payloads carry a ``schema_version`` (frozen schema v1, see
``docs/api.md``).

Nine commands cover the common workflows:

``run``
    Simulate one scenario file and print per-tenant plus aggregate
    fill-throughput metrics::

        python -m repro run scenarios/multi_tenant.yaml
        python -m repro run scenarios/quickstart.yaml --json -
        python -m repro run scenarios/smoke.yaml --set policy=edf+sjf

``validate``
    Load and validate a scenario spec (including ``faults:`` and elastic
    tenant blocks) without running it; exits non-zero with the
    ``ScenarioError`` message on a malformed spec::

        python -m repro validate scenarios/faulty_cluster.yaml

``sweep``
    Re-run a scenario across a parameter grid, fanning the runs out over
    *supervised* worker processes (see ``docs/robustness.md``).  The grid
    comes from the scenario's ``sweep`` block or from
    ``--parameter/--values`` overrides; every grid point is validated
    *before* any worker spawns, so a typo'd path or value is a one-line
    error instead of N worker tracebacks.  A worker that crashes, raises
    or exceeds ``--timeout`` is retried with backoff up to
    ``--max-retries``; a point that exhausts its budget is reported as a
    structured failure (exit 1) instead of aborting the grid.  Completed
    points are journaled under ``<cache-dir>/sweeps/<sweep_id>/`` so an
    interrupted sweep (exit 130) resumes with ``--resume auto`` and
    merges bit-identically; ``--chaos`` injects faults for testing::

        python -m repro sweep scenarios/multi_tenant.yaml
        python -m repro sweep scenarios/multi_tenant.yaml \\
            --parameter policy --values sjf,edf+sjf,slack+sjf --workers 3
        python -m repro sweep scenarios/multi_tenant.yaml --resume auto
        python -m repro sweep scenarios/smoke.yaml \\
            --chaos kill --chaos-rate 0.5 --timeout 120

    ``--shard i/N`` runs one content-keyed shard of the grid, for
    fanning a sweep out across processes or machines; the partial
    outputs recombine bit-identically with ``repro merge`` (see
    ``docs/distributed.md``)::

        python -m repro sweep scenarios/multi_tenant.yaml --shard 0/2 \\
            --json shard0.json

``merge``
    Recombine the outputs of ``repro sweep --shard i/N`` (result JSON
    files and/or shard journals) into the exact payload the unsharded
    sweep would have produced (see ``docs/distributed.md``); refuses
    grid-digest mismatches and incomplete shard sets::

        python -m repro merge shard0.json shard1.json --json merged.json
        python -m repro merge .repro-cache/sweeps/<id>-shard*of2 --json -

``cache-serve``
    Run the shared plan-cache service: a tiny TCP daemon sweep shards
    point at with ``--cache-url`` (or ``REPRO_CACHE_URL``) so a fleet
    pays each plan search once globally::

        python -m repro cache-serve --host 0.0.0.0 --port 8377

``report``
    Regenerate the paper's tables/figures (the same harnesses as
    ``benchmarks/``) and write ``EXPERIMENTS.md``::

        python -m repro report --output EXPERIMENTS.md --only "Figure 9"

``bench``
    Run the sized simulator performance benchmarks and write a
    machine-readable ``BENCH_<size>.json`` trajectory file (see
    ``docs/performance.md``)::

        python -m repro bench --size smoke --json
        python -m repro bench --size medium --baseline

``profile``
    Run one scenario and report the kernel's per-event-kind handler
    timings plus plan-cache traffic (see ``docs/performance.md``)::

        python -m repro profile scenarios/multi_tenant.yaml
        python -m repro profile scenarios/multi_tenant.yaml --json -

``fuzz``
    Run a property-based verification campaign: generate random valid
    scenarios from a seeded fuzzer, execute each under the runtime
    invariant engine, cross-check with the differential oracles, and
    shrink any failure to a minimal reproducer under ``repro-failures/``
    (see ``docs/testing.md``)::

        python -m repro fuzz --seed 0 --runs 25 --budget smoke
        python -m repro fuzz --seed 7 --runs 100 --budget deep --json -

``run``, ``validate``, ``sweep`` and ``profile`` accept repeatable
``--set PATH=VALUE`` dotted-path overrides (the sweep-grid syntax, e.g.
``--set tenants.0.workload.arrival_rate_per_hour=240``).  Scheduling
policies, preemption rules, arrival processes, fault models and bench
sizes all resolve through the unified registries (:mod:`repro.registry`),
so plugins installed under the ``repro.plugins`` entry-point group are
addressable by name from every command.

``run``, ``sweep``, ``bench`` and ``profile`` share a persistent plan
cache under ``.repro-cache/`` (``--cache-dir`` to relocate,
``--no-disk-cache`` to opt out), so repeated invocations and sweep
workers pay each plan search once; ``--cache-url HOST:PORT`` (or
``REPRO_CACHE_URL``) adds the shared ``cache-serve`` tier behind it so
a sharded fleet pays each plan search once *globally*.  Scenario files are documented in
``docs/scenarios.md``; every command exits non-zero with a one-line
error for malformed specs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro._version import __version__
from repro.api import Experiment, ProfileResult, RunResult, ScenarioError, SweepResult
from repro.sim.scenario import ScenarioSpec
from repro.utils import plancache
from repro.utils.tables import Table

#: Default location of the persistent plan/estimate cache shared by
#: ``run``/``sweep``/``bench``/``profile`` (see repro.utils.plancache).
DEFAULT_CACHE_DIR = ".repro-cache"


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="PATH",
        help=f"persistent plan-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="disable the persistent plan cache for this invocation",
    )
    parser.add_argument(
        "--cache-url",
        default=None,
        metavar="HOST:PORT",
        help="shared plan-cache service ('repro cache-serve') to read "
        "through and write back to; defaults to $REPRO_CACHE_URL when set",
    )


def _add_set_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--set",
        action="append",
        dest="overrides",
        metavar="PATH=VALUE",
        help="dotted-path scenario override (repeatable), e.g. --set policy=edf+sjf",
    )


def _configure_plancache(args: argparse.Namespace) -> None:
    # --cache-url beats the environment; REPRO_CACHE_URL lets a fleet be
    # pointed at one 'repro cache-serve' without touching every command.
    cache_url = getattr(args, "cache_url", None) or os.environ.get(
        "REPRO_CACHE_URL"
    ) or None
    plancache.configure(
        None if args.no_disk_cache else args.cache_dir,
        remote_url=cache_url,
    )


def _coerce_scalar(token: str) -> Any:
    """Parse a CLI override value: int, float, bool, null or plain string."""
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("null", "none"):
        return None
    for parser in (int, float):
        try:
            return parser(token)
        except ValueError:
            continue
    return token


def _experiment(args: argparse.Namespace) -> Experiment:
    """The command's Experiment: the scenario file plus ``--set`` overrides."""
    exp = Experiment.from_yaml(args.scenario)
    for item in getattr(args, "overrides", None) or ():
        path, sep, value = item.partition("=")
        if not sep or not path:
            raise ScenarioError(f"--set expects PATH=VALUE, got {item!r}")
        exp = exp.with_override(path, _coerce_scalar(value))
    return exp


def _print_result(spec: ScenarioSpec, result: RunResult, *, stream=None) -> None:
    stream = stream or sys.stdout
    header = f"Scenario: {spec.name}"
    if spec.description:
        header += f" -- {spec.description}"
    print(header, file=stream)
    print(
        f"policy={spec.policy}"
        + (f" preemption={spec.preemption}" if spec.preemption else "")
        + f" horizon={spec.horizon_seconds:.0f}s"
        + f" tenants={len(spec.tenants)}",
        file=stream,
    )
    print("", file=stream)
    print(result.summary_table().to_ascii(), file=stream)
    agg = result.aggregate
    print("", file=stream)
    print(
        f"Aggregate: {agg.jobs_completed}/{agg.jobs_submitted} jobs completed, "
        f"{result.fill_tflops_per_device:.2f} recovered TFLOP/s per device, "
        f"{agg.num_preemptions} preemption(s), "
        f"{result.backlog_remaining} left in backlog.",
        file=stream,
    )


def _write_json(payload: Dict[str, Any], destination: str) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        Path(destination).write_text(text + "\n")


# -- run ---------------------------------------------------------------------------


def cmd_run(args: argparse.Namespace) -> int:
    _configure_plancache(args)
    exp = _experiment(args)
    result = exp.run()
    if args.json != "-":  # '-' means: stdout carries pure JSON instead
        _print_result(exp.spec, result)
    if args.json:
        _write_json(result.to_dict(include_timings=True), args.json)
    return 0


# -- validate ----------------------------------------------------------------------


def cmd_validate(args: argparse.Namespace) -> int:
    """Load + validate a scenario spec without simulating anything.

    A malformed spec raises :class:`ScenarioError`, which ``main`` turns
    into a one-line error on stderr and exit code 2.
    """
    spec = _experiment(args).validate()
    dynamics = []
    if spec.faults:
        dynamics.append(f"{len(spec.faults)} fault(s)")
    elastic = sum(
        1 for t in spec.tenants if t.join_at is not None or t.leave_at is not None
    )
    if elastic:
        dynamics.append(f"{elastic} elastic tenant(s)")
    open_loop = sum(1 for t in spec.tenants if t.workload.open_loop)
    if open_loop:
        dynamics.append(f"{open_loop} open-loop workload(s)")
    print(
        f"ok: scenario {spec.name!r} is valid -- "
        f"{len(spec.tenants)} tenant(s), policy={spec.policy}, "
        f"horizon={spec.horizon_seconds:.0f}s"
        + (", " + ", ".join(dynamics) if dynamics else "")
    )
    return 0


# -- sweep -------------------------------------------------------------------------


def _chaos_plan(args: argparse.Namespace):
    """The ChaosPlan described by ``--chaos*`` flags (None without --chaos)."""
    if not args.chaos:
        return None
    from repro.api import ChaosPlan
    from repro.registry import chaos_injectors

    if args.chaos not in chaos_injectors.names():
        raise ScenarioError(
            f"unknown chaos injector {args.chaos!r}; "
            f"known: {sorted(chaos_injectors.names())}"
        )
    params: Dict[str, Any] = {}
    for item in args.chaos_arg or ():
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ScenarioError(f"--chaos-arg expects KEY=VALUE, got {item!r}")
        params[key] = _coerce_scalar(value)
    return ChaosPlan.build(
        args.chaos,
        params,
        probability=args.chaos_rate,
        max_attempt=args.chaos_attempts,
        seed=args.chaos_seed,
    )


def _parse_shard(text: Optional[str]) -> tuple:
    """Parse ``--shard I/N`` into ``(shard_index, shards)``; (0, 1) when unset."""
    if not text:
        return 0, 1
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ScenarioError(
            f"--shard expects I/N with 0 <= I < N (e.g. 1/4), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ScenarioError(
            f"--shard expects I/N with 0 <= I < N (e.g. 1/4), got {text!r}"
        )
    return index, count


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import SweepInterrupted

    _configure_plancache(args)
    exp = _experiment(args)
    parameter = args.parameter or None
    values = (
        [_coerce_scalar(v) for v in args.values.split(",")]
        if args.parameter and args.values
        else [] if args.parameter else None
    )
    journal_dir = (
        None if args.no_resume_journal else str(Path(args.cache_dir) / "sweeps")
    )
    shard_index, shards = _parse_shard(args.shard)
    stdout_json = args.json == "-"
    # Fail-fast validation of every grid point happens inside the facade,
    # before any worker process spawns.
    try:
        result = exp.sweep(
            parameter=parameter,
            values=values,
            workers=args.workers,
            max_retries=args.max_retries,
            timeout_seconds=args.timeout,
            journal_dir=journal_dir,
            resume=args.resume,
            chaos=_chaos_plan(args),
            shards=shards,
            shard_index=shard_index,
            journal_flush_records=args.journal_flush_records,
            journal_flush_seconds=args.journal_flush_seconds,
            log=lambda line: print(line, file=sys.stderr),
        )
    except SweepInterrupted as exc:
        print(f"error: {exc}", file=sys.stderr)
        if journal_dir is not None:
            print(
                f"hint: rerun with --resume {exc.sweep_id} (or --resume auto) "
                f"to continue from the journal",
                file=sys.stderr,
            )
        return 130
    if not stdout_json:
        _print_sweep_table(exp.spec, result)
    if args.json:
        _write_json(result.to_dict(), args.json)
    if result.failures:
        for failure in result.failures:
            print(f"error: sweep point {failure.describe()}", file=sys.stderr)
        if journal_dir is not None:
            print(
                f"hint: {len(result.failures)} point(s) failed; rerun with "
                f"--resume {result.sweep_id} to re-attempt just those",
                file=sys.stderr,
            )
        return 1
    return 0


def _print_sweep_table(spec: ScenarioSpec, result: SweepResult) -> None:
    table = Table(
        columns=[
            result.parameter,
            "completed",
            "submitted",
            "fill TFLOP/s per GPU",
            "avg JCT (s)",
            "makespan (s)",
            "deadline hit rate",
            "preemptions",
        ],
        title=f"Sweep of {result.parameter!r} on scenario {spec.name!r}",
        formats={
            "fill TFLOP/s per GPU": ".2f",
            "avg JCT (s)": ".1f",
            "makespan (s)": ".1f",
            "deadline hit rate": ".1%",
        },
    )
    for point in result.points:
        agg = point.aggregate
        table.add_row(
            str(point.value),
            agg["jobs_completed"],
            agg["jobs_submitted"],
            point.payload["fill_tflops_per_device"],
            agg["average_jct"],
            agg["makespan"],
            agg["deadline_hit_rate"] if agg["deadlines_total"] else None,
            agg["num_preemptions"],
        )
    print(table.to_ascii())


# -- merge -------------------------------------------------------------------------


def cmd_merge(args: argparse.Namespace) -> int:
    """Recombine sharded sweep partials into one canonical sweep payload."""
    from repro.api.results import result_digest
    from repro.api.schema import validate_sweep_payload
    from repro.dist import MergeError, load_partial, merge_sweep_payloads

    try:
        partials = [load_partial(path) for path in args.inputs]
        merged = merge_sweep_payloads(partials, sources=args.inputs)
    except MergeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    validate_sweep_payload(merged)
    core = [
        {
            key: value
            for key, value in entry.items()
            if key not in ("parameter", "value", "point_key")
        }
        for entry in merged["sweep"]
    ]
    digest = result_digest({"points": core})
    stdout_json = args.json == "-"
    if args.json:
        _write_json(merged, args.json)
    if not stdout_json:
        failed = merged["failed_points"]
        print(
            f"merged {len(partials)} partial(s) of sweep {merged['sweep_id']}: "
            f"{len(merged['sweep'])} point(s)"
            + (f", {len(failed)} failed" if failed else "")
            + f" on scenario {merged['scenario']!r}; result digest {digest}"
        )
    if merged["failed_points"]:
        for failure in merged["failed_points"]:
            print(
                f"error: sweep point {failure['parameter']}="
                f"{failure['value']}: [{failure['kind']}] "
                f"{failure['error_type']}: {failure['message']}",
                file=sys.stderr,
            )
        return 1
    return 0


# -- cache-serve -------------------------------------------------------------------


def cmd_cache_serve(args: argparse.Namespace) -> int:
    """Run the shared plan-cache service in the foreground."""
    from repro.dist import PlanCacheServer

    server = PlanCacheServer(
        host=args.host,
        port=args.port,
        spool_dir=args.spool_dir,
        max_entries=args.max_entries,
    )
    host, port = server.address
    print(
        f"repro cache-serve: listening on {host}:{port}"
        + (f", spooling to {args.spool_dir}" if args.spool_dir else "")
        + " (Ctrl-C to stop)",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        stats = server.stats()
        print(
            f"repro cache-serve: stopped -- {stats['entries']} entrie(s), "
            f"{stats['hits']} hit(s), {stats['puts']} put(s)",
            file=sys.stderr,
        )
    finally:
        server.stop()
    return 0


# -- report ------------------------------------------------------------------------


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import run_all, render_markdown

    only = args.only or None
    results = run_all(only)
    if not results:
        print(f"error: no experiments matched {only!r}", file=sys.stderr)
        return 2
    content = render_markdown(results)
    if args.output == "-":
        print(content)
    else:
        Path(args.output).write_text(content)
        print(f"wrote {len(results)} experiment section(s) to {args.output}")
    return 0


# -- profile -----------------------------------------------------------------------


def cmd_profile(args: argparse.Namespace) -> int:
    """Run one scenario and report where the simulation time went."""
    _configure_plancache(args)
    exp = _experiment(args)
    profile = exp.profile()
    stdout_json = args.json == "-"
    if not stdout_json:
        _print_profile(args.scenario, exp.spec, profile)
    if args.json:
        _write_json(profile.to_dict(), args.json)
    if args.trace:
        _write_json(profile.to_chrome_trace(), args.trace)
        if not stdout_json and args.trace != "-":
            print(
                f"wrote Chrome trace to {args.trace} "
                "(open in Perfetto or chrome://tracing)"
            )
    return 0


def _print_profile(scenario_path: str, spec: ScenarioSpec, profile: ProfileResult) -> None:
    counts = dict(profile.events_by_kind)
    timings = dict(profile.timings_by_kind)
    handler_total = profile.handler_seconds
    wall = profile.wall_seconds
    print(
        f"Scenario: {spec.name} -- {profile.events_processed} events in {wall:.3f}s"
    )
    table = Table(
        columns=["event kind", "events", "total (s)", "avg (us)", "share"],
        title=f"repro profile {scenario_path}",
        formats={"total (s)": ".4f", "avg (us)": ".1f", "share": ".1%"},
    )
    for kind in sorted(counts):
        seconds = timings.get(kind, 0.0)
        count = counts[kind]
        table.add_row(
            kind,
            count,
            seconds,
            1e6 * seconds / count if count else 0.0,
            seconds / handler_total if handler_total > 0 else 0.0,
        )
    print(table.to_ascii())
    cache = profile.plan_cache
    if cache.get("enabled"):
        print(
            f"plan cache ({plancache.cache_dir()}): "
            f"{cache['hits']} hit(s), {cache['misses']} miss(es), "
            f"{cache['writes']} write(s)"
        )
    else:
        print("plan cache: disabled")
    print(
        f"handlers: {handler_total:.3f}s of {wall:.3f}s wall-clock "
        f"({profile.events_processed / wall:.0f} events/sec overall)"
    )


# -- fuzz --------------------------------------------------------------------------


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run one property-based verification campaign (see docs/testing.md)."""
    from repro.verify import run_fuzz_campaign

    _configure_plancache(args)
    stdout_json = args.json == "-"
    say = (lambda line: None) if stdout_json else print
    report = run_fuzz_campaign(
        seed=args.seed,
        runs=args.runs,
        budget=args.budget,
        out_dir=args.out,
        differential=not args.no_differential,
        shrink=not args.no_shrink,
        workers=args.workers,
        timeout_seconds=args.timeout,
        kernel_backend=args.backend,
        log=say,
    )
    if args.json:
        _write_json(report.to_dict(), args.json)
    if not report.ok:
        print(
            f"error: {len(report.failures)} failing scenario(s); "
            f"reproducers under {args.out}/",
            file=sys.stderr,
        )
        return 1
    return 0


# -- lint --------------------------------------------------------------------------


def cmd_lint(args: argparse.Namespace) -> int:
    """Statically verify the tree against the bit-identity contracts."""
    from repro.analysis import FORMATTERS, load_rules, run_lint

    if args.list_rules:
        for rule in load_rules():
            print(f"{rule.id:<22} [{rule.family}] {rule.description}")
        return 0
    try:
        report = run_lint(args.paths, rule_ids=args.rule)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    output = FORMATTERS[args.format](report)
    print(output)
    return 0 if report.ok else 1


# -- bench -------------------------------------------------------------------------


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_bench, write_bench_json
    from repro.bench.workloads import SIZES

    _configure_plancache(args)

    sizes = args.size or ["smoke"]
    stdout_only = args.output == "-"
    if stdout_only:
        # Keep the sibling commands' "- means stdout" convention: print the
        # JSON payload and skip the BENCH_<size>.json file.
        args.output, args.json = None, True
    if args.output and len(sizes) > 1:
        print(
            "error: --output names a single file; use one --size per "
            "invocation (the default writes one BENCH_<size>.json per size)",
            file=sys.stderr,
        )
        return 2
    say = (lambda *a, **k: None) if args.json else print
    payloads = []
    for size in sizes:
        say(f"bench {size}: {SIZES[size].num_jobs} fill jobs")
        payload = run_bench(
            size,
            baseline=args.baseline,
            seed=args.seed,
            backend=args.backend,
            sweep_case=args.sweep_case,
            progress=say,
        )
        payloads.append(payload)
        if not stdout_only:
            path = write_bench_json(payload, args.output)
            say(f"wrote {path}")
        table = Table(
            columns=[
                "case",
                "jobs",
                "executors",
                "events",
                "wall-clock (s)",
                "events/sec",
            ]
            + (["speedup vs no-cache", "identical"] if args.baseline else []),
            title=f"repro bench --size {size}",
            formats={"wall-clock (s)": ".3f", "events/sec": ".0f"},
        )
        for case in payload["cases"]:
            opt = case["optimized"]
            row = [
                case["name"],
                case["num_jobs"],
                case["num_executors"],
                opt["events_processed"],
                opt["run_seconds"],
                opt["events_per_second"],
            ]
            if args.baseline:
                row += [
                    f'{case["speedup"]}x' if case["speedup"] is not None else "-",
                    "yes" if case["identical_results"] else "NO",
                ]
            table.add_row(*row)
        say(table.to_ascii())
        sweep_case = payload.get("sweep_case")
        if sweep_case is not None:
            cold = sweep_case["single_process_cold"]
            warm = sweep_case["sharded_warm"]
            say(
                f"sweep case: {sweep_case['num_points']} points -- cold 1-process "
                f"{cold['points_per_second']} pts/s vs {sweep_case['shards']}-shard "
                f"warm {warm['points_per_second']} pts/s "
                f"({sweep_case['speedup']}x, remote hits "
                f"{warm['plan_cache']['remote_hits']}, identical="
                f"{'yes' if sweep_case['identical_results'] else 'NO'})"
            )
    if args.json:
        # One parseable document regardless of how many sizes ran.
        _write_json(
            payloads[0]
            if len(payloads) == 1
            else {"schema": "repro-bench/v1", "benches": payloads},
            "-",
        )
    return 0


# -- entry point -------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PipeFill reproduction: run, sweep and report cluster simulations.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one scenario file")
    run_p.add_argument("scenario", help="path to a .yaml/.json scenario spec")
    run_p.add_argument(
        "--json",
        metavar="PATH",
        help="write the result as JSON to PATH ('-' for stdout)",
    )
    _add_set_flag(run_p)
    _add_cache_flags(run_p)
    run_p.set_defaults(func=cmd_run)

    profile_p = sub.add_parser(
        "profile",
        help="run one scenario and report per-event-kind handler timings",
    )
    profile_p.add_argument("scenario", help="path to a .yaml/.json scenario spec")
    profile_p.add_argument(
        "--json",
        metavar="PATH",
        help="write the timing profile as JSON to PATH ('-' for stdout)",
    )
    profile_p.add_argument(
        "--trace",
        metavar="PATH",
        help="write the profile as a Chrome trace (Perfetto/chrome://tracing) "
        "to PATH ('-' for stdout)",
    )
    _add_set_flag(profile_p)
    _add_cache_flags(profile_p)
    profile_p.set_defaults(func=cmd_profile)

    validate_p = sub.add_parser(
        "validate", help="load and validate a scenario file without running it"
    )
    validate_p.add_argument("scenario", help="path to a .yaml/.json scenario spec")
    _add_set_flag(validate_p)
    validate_p.set_defaults(func=cmd_validate)

    sweep_p = sub.add_parser("sweep", help="run a scenario across a parameter grid")
    sweep_p.add_argument("scenario", help="path to a .yaml/.json scenario spec")
    sweep_p.add_argument(
        "--parameter",
        help="dotted path to override (e.g. policy, tenants.0.workload.arrival_rate_per_hour)",
    )
    sweep_p.add_argument("--values", help="comma-separated values for --parameter")
    sweep_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (default: min(len(values), 4); 1 disables fan-out)",
    )
    sweep_p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="extra attempts per grid point after a crash/timeout/error (default: 2)",
    )
    sweep_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock limit; a hung worker is killed and retried "
        "(default: no limit; needs --workers > 1)",
    )
    sweep_p.add_argument(
        "--shard",
        metavar="I/N",
        help="run only shard I of N (0-based, e.g. --shard 0/4): the grid "
        "is split by stable content keys, so N independent invocations "
        "cover it exactly once and 'repro merge' recombines their outputs",
    )
    sweep_p.add_argument(
        "--journal-flush-records",
        type=int,
        default=1,
        metavar="K",
        help="fsync the sweep journal every K records instead of every "
        "record (default: 1; always fsyncs on close)",
    )
    sweep_p.add_argument(
        "--journal-flush-seconds",
        type=float,
        default=None,
        metavar="T",
        help="also fsync the journal once T seconds have passed since the "
        "last fsync (default: records-only batching)",
    )
    sweep_p.add_argument(
        "--resume",
        metavar="SWEEP_ID",
        help="resume a journaled sweep, skipping completed points "
        "('auto' resolves this grid's own sweep id)",
    )
    sweep_p.add_argument(
        "--no-resume-journal",
        action="store_true",
        help="disable the checkpoint journal under <cache-dir>/sweeps/",
    )
    sweep_p.add_argument(
        "--chaos",
        metavar="INJECTOR",
        help="inject a registered chaos fault into worker attempts "
        "(kill, sleep, exception, interrupt, truncate-cache; testing)",
    )
    sweep_p.add_argument(
        "--chaos-rate",
        type=float,
        default=1.0,
        metavar="P",
        help="probability an eligible attempt is injected (default: 1.0)",
    )
    sweep_p.add_argument(
        "--chaos-attempts",
        type=int,
        default=1,
        metavar="N",
        help="inject only into attempts <= N, so retries can succeed (default: 1)",
    )
    sweep_p.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed of the deterministic injection decision (default: 0)",
    )
    sweep_p.add_argument(
        "--chaos-arg",
        action="append",
        metavar="KEY=VALUE",
        help="injector parameter (repeatable), e.g. --chaos-arg seconds=30",
    )
    sweep_p.add_argument("--json", metavar="PATH", help="also write results as JSON")
    _add_set_flag(sweep_p)
    _add_cache_flags(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    merge_p = sub.add_parser(
        "merge",
        help="recombine sharded sweep partials into one sweep result",
    )
    merge_p.add_argument(
        "inputs",
        nargs="+",
        metavar="PARTIAL",
        help="shard outputs to merge: 'repro sweep --shard i/N --json' files "
        "and/or shard journals (<cache-dir>/sweeps/<journal-id>[/journal.jsonl])",
    )
    merge_p.add_argument(
        "--json",
        metavar="PATH",
        help="write the merged sweep payload as JSON to PATH ('-' for stdout)",
    )
    merge_p.set_defaults(func=cmd_merge)

    serve_p = sub.add_parser(
        "cache-serve",
        help="run the shared plan-cache service for sharded fleets",
    )
    serve_p.add_argument(
        "--host",
        default="127.0.0.1",
        help="address to bind (default: 127.0.0.1; use 0.0.0.0 for a fleet)",
    )
    serve_p.add_argument(
        "--port",
        type=int,
        default=8377,
        help="port to bind (default: 8377; 0 picks an ephemeral port)",
    )
    serve_p.add_argument(
        "--spool-dir",
        default=None,
        metavar="DIR",
        help="also persist entries to DIR so a restarted server comes back warm",
    )
    serve_p.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="cap the in-memory store at N entries (default: unbounded)",
    )
    serve_p.set_defaults(func=cmd_cache_serve)

    report_p = sub.add_parser("report", help="regenerate the paper-experiment report")
    report_p.add_argument(
        "--output", default="EXPERIMENTS.md", help="output path ('-' for stdout)"
    )
    report_p.add_argument(
        "--only",
        action="append",
        metavar="ID",
        help="run only this experiment id (repeatable), e.g. --only 'Figure 9'",
    )
    report_p.set_defaults(func=cmd_report)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="fuzz random scenarios under the invariant engine and oracles",
    )
    from repro.registry import fuzz_budgets as _FUZZ_BUDGETS

    fuzz_p.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default: 0)"
    )
    fuzz_p.add_argument(
        "--runs", type=int, default=25, help="scenarios to generate (default: 25)"
    )
    fuzz_p.add_argument(
        "--budget",
        default="smoke",
        choices=_FUZZ_BUDGETS.names(),
        help="size/complexity preset (default: smoke)",
    )
    fuzz_p.add_argument(
        "--out",
        default="repro-failures",
        metavar="DIR",
        help="directory for shrunk failure reproducers (default: repro-failures)",
    )
    fuzz_p.add_argument(
        "--no-differential",
        action="store_true",
        help="skip the differential oracles (invariants only)",
    )
    fuzz_p.add_argument(
        "--no-shrink",
        action="store_true",
        help="write failing scenarios as-is instead of shrinking them",
    )
    fuzz_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="supervised worker processes; a crashed case becomes a "
        "'runtime' failure instead of killing the campaign (default: 1)",
    )
    fuzz_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-case wall-clock limit under supervision (default: none)",
    )
    fuzz_p.add_argument(
        "--json",
        metavar="PATH",
        help="write the campaign report as JSON to PATH ('-' for stdout)",
    )
    from repro.registry import kernel_backends as _FUZZ_BACKENDS

    fuzz_p.add_argument(
        "--backend",
        default=None,
        choices=_FUZZ_BACKENDS.names(),
        help="force this kernel backend on every generated scenario "
        "(default: the scenario default, heapq)",
    )
    _add_cache_flags(fuzz_p)
    fuzz_p.set_defaults(func=cmd_fuzz)

    lint_p = sub.add_parser(
        "lint",
        help="statically check determinism & consistency contracts",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint_p.add_argument(
        "--format",
        default="text",
        choices=("text", "json", "github"),
        help="output format (default: text; github emits workflow annotations)",
    )
    lint_p.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only this rule id (repeatable; default: all registered rules)",
    )
    lint_p.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules (id, family, description) and exit",
    )
    lint_p.set_defaults(func=cmd_lint)

    bench_p = sub.add_parser(
        "bench", help="run the simulator performance benchmarks"
    )
    from repro.bench.workloads import SIZES as _BENCH_SIZES

    bench_p.add_argument(
        "--size",
        action="append",
        choices=list(_BENCH_SIZES),
        help="benchmark size (repeatable; default: smoke)",
    )
    bench_p.add_argument(
        "--baseline",
        action="store_true",
        help="also run the brute-force no-cache mode and report the speedup",
    )
    bench_p.add_argument(
        "--seed", type=int, default=0, help="workload generation seed"
    )
    from repro.registry import kernel_backends as _KERNEL_BACKENDS

    bench_p.add_argument(
        "--backend",
        default="heapq",
        choices=_KERNEL_BACKENDS.names(),
        help="kernel event-queue backend to benchmark (default: heapq)",
    )
    bench_p.add_argument(
        "--sweep-case",
        action="store_true",
        help=(
            "also measure the sharded-sweep case: a cold single-process "
            "sweep vs 2 shards reading through a warm plan-cache service "
            "(adds a 'sweep_case' block to the payload)"
        ),
    )
    bench_p.add_argument(
        "--output",
        metavar="PATH",
        help="output file (default: BENCH_<size>.json in the working directory)",
    )
    bench_p.add_argument(
        "--json",
        action="store_true",
        help="print the benchmark payload as JSON on stdout (silences the table)",
    )
    _add_cache_flags(bench_p)
    bench_p.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into a pager/head that exited early.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())

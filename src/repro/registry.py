"""Unified plugin registries for every extensible simulator concept.

One :class:`Registry` instance exists per extension point -- scheduling
*policies*, *preemption rules*, open-loop *arrival processes*, *fault
models* and bench *workload sizes* -- replacing the hand-rolled
``POLICIES`` dict and scattered ``get_*`` lookups.  Registration is a
decorator::

    from repro.registry import register_policy

    @register_policy("my-policy")
    def my_policy(job, state, executor_index):
        return -job.arrival_time

and the name immediately resolves everywhere names are used: scenario
files (``policy: my-policy``), sweep grids (``--values my-policy,sjf``),
:meth:`repro.api.Experiment.with_policy` and the CLI.

Third-party packages ship registrations through the ``repro.plugins``
`importlib.metadata` entry-point group.  Each entry point names either a
module (imported for its registration side effects) or a callable (loaded
and called with no arguments)::

    [project.entry-points."repro.plugins"]
    my-plugin = "my_package.repro_plugin"         # module form
    my-other  = "my_package.plugin:register"      # callable form

Discovery is lazy: installed plugins load the first time a lookup misses
or a registry is enumerated, so pure library users who never name a
plugin pay nothing.  A broken plugin degrades to a ``RuntimeWarning``,
never to an import error in the host application.

Names are case-insensitive (stored lowercase, matching the historical
``get_policy`` behaviour).  Lookup failures raise ``KeyError`` with an
"unknown <kind> ..." message listing the known names -- the message shape
scenario validation has always surfaced to users.
"""

from __future__ import annotations

import warnings
from importlib import import_module
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, TypeVar

#: The entry-point group third-party packages register plugins under.
ENTRY_POINT_GROUP = "repro.plugins"

_T = TypeVar("_T")

_plugins_loaded = False


def _iter_entry_points():
    """All installed ``repro.plugins`` entry points (version-portable)."""
    import importlib.metadata as metadata

    try:
        return list(metadata.entry_points(group=ENTRY_POINT_GROUP))  # py>=3.10
    except TypeError:  # pragma: no cover - exercised on python 3.9
        return list(metadata.entry_points().get(ENTRY_POINT_GROUP, []))


def load_entry_point_plugins(*, force: bool = False) -> List[str]:
    """Load every installed ``repro.plugins`` entry point once per process.

    Returns the names of the entry points loaded by *this* call (empty on
    the cached fast path).  ``force=True`` re-runs discovery -- useful in
    tests and after installing a plugin into a live process.  Loading is
    best-effort: a plugin that raises becomes a ``RuntimeWarning`` naming
    the plugin, and the remaining plugins still load.
    """
    global _plugins_loaded
    if _plugins_loaded and not force:
        return []
    _plugins_loaded = True
    loaded: List[str] = []
    for entry_point in _iter_entry_points():
        try:
            target = entry_point.load()
            # A module registers at import time; a callable registers when
            # called.  ``load()`` already imported the module either way.
            if callable(target):
                target()
            loaded.append(entry_point.name)
        except Exception as exc:
            warnings.warn(
                f"failed to load repro plugin {entry_point.name!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return loaded


class Registry:
    """One named extension point: a case-insensitive name -> object map.

    Parameters
    ----------
    kind:
        Human label used in error messages ("policy", "preemption rule",
        ...).
    seed_module:
        Dotted module path imported lazily before the first lookup or
        enumeration; the module's import side effects register the
        shipped defaults.  Keeping the seeds next to their
        implementations (``repro.core.policies`` registers the shipped
        policies) avoids import cycles with this module.
    """

    def __init__(self, kind: str, *, seed_module: Optional[str] = None) -> None:
        self.kind = kind
        self._seed_module = seed_module
        self._seeded = seed_module is None
        self._entries: Dict[str, Any] = {}

    # -- registration ------------------------------------------------------------

    def register(
        self, name: str, obj: Any = None, *, overwrite: bool = False
    ) -> Any:
        """Register ``obj`` under ``name``; usable as a decorator.

        Re-registering the *same* object under its existing name is a
        no-op (so module re-imports stay idempotent); binding an existing
        name to a different object raises unless ``overwrite=True``.
        """
        if obj is None:
            return lambda target: self.register(name, target, overwrite=overwrite)
        # Seed the shipped defaults first, so registering a name that
        # collides with one of them fails HERE (clearly, in user code)
        # instead of later from inside the seed module's import.
        self._ensure_seeded()
        key = self._key(name)
        current = self._entries.get(key)
        if current is not None and current is not obj and not overwrite:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._entries[key] = obj
        return obj

    def unregister(self, name: str) -> None:
        """Remove a registration (primarily for tests and live reloads)."""
        self._entries.pop(self._key(name), None)

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> Any:
        """Resolve a name, loading entry-point plugins on a first miss."""
        self._ensure_seeded()
        key = self._key(name)
        if key not in self._entries:
            load_entry_point_plugins()
        try:
            return self._entries[key]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; known: {sorted(self._entries)}"
            ) from None

    def name_of(self, obj: Any) -> Optional[str]:
        """Reverse lookup: the registered name of ``obj`` (``None`` if absent)."""
        self._ensure_seeded()
        for name, value in self._entries.items():
            if value is obj:
                return name
        return None

    def names(self) -> List[str]:
        """All registered names (shipped defaults plus loaded plugins)."""
        self._ensure_seeded()
        load_entry_point_plugins()
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        self._ensure_seeded()
        if self._key(name) in self._entries:
            return True
        # Same fallback as get(): an installed plugin may provide it.
        load_entry_point_plugins()
        return self._key(name) in self._entries

    def view(self) -> "RegistryView":
        """A live read-only :class:`Mapping` over this registry."""
        return RegistryView(self)

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _key(name: str) -> str:
        return str(name).lower()

    def _ensure_seeded(self) -> None:
        if not self._seeded:
            self._seeded = True
            assert self._seed_module is not None
            import_module(self._seed_module)


class RegistryView(Mapping):
    """Read-only ``Mapping`` facade over a :class:`Registry`.

    Backs the historical module-level dicts (``repro.core.policies.
    POLICIES``, ``repro.bench.workloads.SIZES``) so existing call sites --
    ``sorted(POLICIES)``, ``POLICIES["sjf"]``, ``"sjf" in POLICIES`` --
    keep working while the registry stays the single source of truth.
    """

    __slots__ = ("_registry",)

    def __init__(self, registry: Registry) -> None:
        self._registry = registry

    def __getitem__(self, name: str) -> Any:
        return self._registry.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry.names())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegistryView({self._registry.kind}: {self._registry.names()})"


# -- the extension points -----------------------------------------------------------

#: Scheduling policies: ``f(job, state, executor_index) -> score``.
policies = Registry("policy", seed_module="repro.core.policies")
#: Preemption rules: ``f(arriving, running, state) -> score``.
preemption_rules = Registry("preemption rule", seed_module="repro.core.policies")
#: Open-loop arrival-process factories (see :func:`register_arrival_process`).
arrival_processes = Registry(
    "arrival process", seed_module="repro.workloads.generator"
)
#: Fault models: ``f(tenants, horizon_seconds, **params) -> [FaultSpec]``.
fault_models = Registry("fault model", seed_module="repro.sim.faultmodels")
#: Bench workload sizes: :class:`repro.bench.workloads.BenchSize` values.
bench_sizes = Registry("bench size", seed_module="repro.bench.workloads")
#: Runtime invariants: zero-argument factories producing
#: :class:`repro.verify.invariants.Invariant` checkers.
invariants = Registry("invariant", seed_module="repro.verify.invariants")
#: Fuzz budget presets: :class:`repro.verify.fuzz.FuzzBudget` values.
fuzz_budgets = Registry("fuzz budget", seed_module="repro.verify.fuzz")
#: Chaos injectors: ``f(*, key, attempt, **params) -> None`` fault hooks
#: fired inside supervised worker attempts (see :mod:`repro.exec.chaos`).
chaos_injectors = Registry("chaos injector", seed_module="repro.exec.chaos")
#: Kernel event-queue backends: zero-argument factories producing queue
#: objects for :class:`repro.sim.kernel.SimKernel` (``push``/``pop``/
#: ``peek``/``__len__``; an optional ``pop_batch`` unlocks the kernel's
#: batched same-timestamp dispatch loop).  Shipped: ``heapq`` (default)
#: and ``soa``; see ``docs/performance.md``.
kernel_backends = Registry("kernel backend", seed_module="repro.sim.events")
#: Static-analysis lint rules: zero-argument factories producing
#: :class:`repro.analysis.core.AnalysisRule` instances.  Registered
#: names are addressable as ``repro lint --rule <name>`` and every
#: registered rule runs by default; see ``docs/static-analysis.md``.
analysis_rules = Registry("analysis rule", seed_module="repro.analysis.rules")


def register_policy(name: str, policy: Any = None, *, overwrite: bool = False):
    """Register a scheduling policy (decorator or direct call)."""
    return policies.register(name, policy, overwrite=overwrite)


def register_preemption_rule(name: str, rule: Any = None, *, overwrite: bool = False):
    """Register a preemption rule (decorator or direct call)."""
    return preemption_rules.register(name, rule, overwrite=overwrite)


def register_arrival_process(name: str, factory: Any = None, *, overwrite: bool = False):
    """Register an open-loop arrival-process factory.

    The factory is called with the keyword arguments of
    :meth:`repro.workloads.generator.TenantWorkloadSpec.build_arrival_process`
    (``name``, ``arrival_rate_per_hour``, ``models``, ``job_type``,
    ``deadline_fraction``, ``deadline_slack_factor``, ``seed``,
    ``end_time``) and must return an iterable of
    :class:`~repro.core.scheduler.FillJob` in arrival-time order.
    """
    return arrival_processes.register(name, factory, overwrite=overwrite)


def register_fault_model(name: str, model: Any = None, *, overwrite: bool = False):
    """Register a fault model: ``f(tenants, horizon_seconds, **params)``.

    ``tenants`` is the scenario's parsed
    :class:`~repro.sim.scenario.TenantSpec` sequence; the model returns the
    :class:`~repro.sim.kernel.FaultSpec` list to schedule.
    """
    return fault_models.register(name, model, overwrite=overwrite)


def register_bench_size(size: Any, *, overwrite: bool = False) -> Any:
    """Register a :class:`~repro.bench.workloads.BenchSize` under its name."""
    return bench_sizes.register(size.name, size, overwrite=overwrite)


def register_invariant(name: str, factory: Any = None, *, overwrite: bool = False):
    """Register a runtime invariant (decorator or direct call).

    ``factory`` is a zero-argument callable (typically an
    :class:`~repro.verify.invariants.Invariant` subclass) producing a
    fresh checker per run; every default-constructed
    :class:`~repro.verify.invariants.InvariantObserver` checks all
    registered invariants, so plugins extend the verification surface by
    registering here (directly or via ``repro.plugins`` entry points).
    """
    return invariants.register(name, factory, overwrite=overwrite)


def register_fuzz_budget(budget: Any, *, overwrite: bool = False) -> Any:
    """Register a :class:`~repro.verify.fuzz.FuzzBudget` under its name."""
    return fuzz_budgets.register(budget.name, budget, overwrite=overwrite)


def register_kernel_backend(name: str, factory: Any = None, *, overwrite: bool = False):
    """Register a kernel event-queue backend (decorator or direct call).

    ``factory`` is a zero-argument callable returning a fresh queue with
    the :class:`~repro.sim.events.EventQueue` contract.  If the queue also
    implements ``pop_batch()`` (return every event at the head timestamp,
    ``(time, sequence)``-ordered), :class:`~repro.sim.kernel.SimKernel`
    runs its batched dispatch loop over it.  Registered names are usable
    as ``kernel_backend`` in scenario files and ``--set
    kernel_backend=<name>`` on the CLI.
    """
    return kernel_backends.register(name, factory, overwrite=overwrite)


def register_chaos_injector(name: str, injector: Any = None, *, overwrite: bool = False):
    """Register a chaos injector (decorator or direct call).

    Injectors are called as ``injector(key=..., attempt=..., **params)``
    inside a supervised attempt, before the task body runs; whatever they
    raise (or do to the process) is what the supervisor must survive.
    Registered names are addressable from ``repro sweep --chaos <name>``.
    """
    return chaos_injectors.register(name, injector, overwrite=overwrite)


def register_analysis_rule(name: str, rule: Any = None, *, overwrite: bool = False):
    """Register a static-analysis lint rule (decorator or direct call).

    ``rule`` is a zero-argument callable (typically an
    :class:`~repro.analysis.core.AnalysisRule` subclass) producing a
    fresh rule instance per lint run.  ``python -m repro lint`` runs
    every registered rule, so plugins extend the static verification
    surface exactly like invariants extend the dynamic one (directly or
    via ``repro.plugins`` entry points).
    """
    return analysis_rules.register(name, rule, overwrite=overwrite)


def resolve_policy(policy: Any) -> Callable:
    """A policy callable from either a registered name or a callable.

    The ergonomic glue that lets ``MultiTenantSimulator(policy="sjf")``
    and scenario specs share one resolution path.
    """
    if callable(policy):
        return policy
    return policies.get(policy)


def resolve_preemption_rule(rule: Any) -> Optional[Callable]:
    """Like :func:`resolve_policy`, for preemption rules (``None`` passes)."""
    if rule is None or callable(rule):
        return rule
    return preemption_rules.get(rule)


def policy_name(policy: Any) -> Optional[str]:
    """The registered name of a policy callable (``None`` when anonymous).

    Sweep grids, scenario files and the persistent plan-cache key all
    identify policies by *name*; a custom callable only becomes usable
    there once registered (see :func:`register_policy` and
    :meth:`repro.api.Experiment.with_policy`).
    """
    if isinstance(policy, str):
        return Registry._key(policy) if policy in policies else None
    return policies.name_of(policy)

"""Figure 5: recovered TFLOPS and main-job overhead vs fraction of bubble filled.

The paper's physical-cluster experiment runs the 5B main job (65% bubble
ratio) and varies the percentage of each bubble's duration the executors
attempt to fill; up to ~68% the main-job overhead stays below 2%, beyond
that it grows quickly while recovered FLOPS keep rising.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import PipeFillConfig, main_job_overhead_fraction
from repro.core.system import PipeFillSystem
from repro.experiments.common import build_workload, main_job_model, make_5b_parallel
from repro.utils.tables import Table

#: Fill fractions swept (the paper varies the filled percentage of the bubble).
DEFAULT_FILL_FRACTIONS: tuple[float, ...] = (0.2, 0.4, 0.55, 0.68, 0.8, 0.9, 1.0)


def run_fig5(
    fill_fractions: Sequence[float] = DEFAULT_FILL_FRACTIONS,
    *,
    horizon_seconds: float = 1800.0,
    seed: int = 0,
) -> Table:
    """Sweep the filled bubble fraction on the 5B physical-cluster main job."""
    model = main_job_model("gpt-5b")
    parallel = make_5b_parallel()
    jobs = build_workload(horizon_seconds, workload="trace-mix", seed=seed)

    table = Table(
        columns=[
            "fill fraction",
            "recovered TFLOPS/GPU",
            "total TFLOPS/GPU",
            "main-job overhead",
        ],
        title="Figure 5: varying the filled fraction of each bubble (5B main job)",
        formats={
            "fill fraction": ".2f",
            "recovered TFLOPS/GPU": ".2f",
            "total TFLOPS/GPU": ".2f",
            "main-job overhead": ".3f",
        },
    )
    for fraction in fill_fractions:
        config = PipeFillConfig(fill_fraction=fraction)
        system = PipeFillSystem(model, parallel, config=config)
        report = system.run(jobs, horizon_seconds=horizon_seconds)
        table.add_row(
            fraction,
            report.utilization.fill_tflops_per_device,
            report.utilization.total_tflops_per_device,
            main_job_overhead_fraction(fraction),
        )
    return table

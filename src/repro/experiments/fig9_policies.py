"""Figure 9: fill-job scheduling policy sensitivity.

Compares the Shortest-Job-First policy against the Makespan-Minimizing
policy at several load levels: SJF achieves lower average job completion
time (especially at lower load), while the makespan policy reduces the
makespan (especially at higher load).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.policies import get_policy
from repro.core.system import PipeFillSystem
from repro.experiments.common import build_workload, main_job_model, make_40b_parallel
from repro.utils.tables import Table

#: Fill-job arrival rates (jobs/hour over the simulated devices) swept as
#: load.  The representative device set is small (one device per pipeline
#: stage), so these rates span moderately loaded to heavily over-loaded
#: regimes, where the two policies' JCT/makespan trade-off is visible.
DEFAULT_LOADS: tuple[float, ...] = (50.0, 150.0, 600.0)


def run_fig9(
    loads: Sequence[float] = DEFAULT_LOADS,
    *,
    num_gpus: int = 8192,
    horizon_seconds: float = 3600.0,
    seed: int = 0,
) -> Table:
    """Average JCT (9a) and makespan (9b) for SJF and makespan-minimizing policies."""
    model = main_job_model("gpt-40b")
    parallel = make_40b_parallel(num_gpus)
    table = Table(
        columns=[
            "arrival rate (jobs/h)",
            "SJF avg JCT (s)",
            "Makespan-min avg JCT (s)",
            "SJF makespan (s)",
            "Makespan-min makespan (s)",
        ],
        title="Figure 9: scheduling-policy sensitivity",
        formats={
            "SJF avg JCT (s)": ".1f",
            "Makespan-min avg JCT (s)": ".1f",
            "SJF makespan (s)": ".1f",
            "Makespan-min makespan (s)": ".1f",
        },
    )
    for load in loads:
        jobs = build_workload(
            horizon_seconds, workload="trace-mix", arrival_rate_per_hour=load, seed=seed
        )
        metrics = {}
        for policy_name in ("sjf", "makespan"):
            system = PipeFillSystem(model, parallel, policy=get_policy(policy_name))
            report = system.run(jobs)
            metrics[policy_name] = report.utilization.fill_metrics
        table.add_row(
            load,
            metrics["sjf"].average_jct,
            metrics["makespan"].average_jct,
            metrics["sjf"].makespan,
            metrics["makespan"].makespan,
        )
    return table

"""Table 1: the fill-job category table.

Regenerates the paper's Table 1 from the model registry: size class,
parameter count of the built analytical model, domain, and which job types
the model may appear as.
"""

from __future__ import annotations

from repro.models.registry import build_model
from repro.utils.tables import Table
from repro.workloads.fill_jobs import FILL_JOB_CATEGORIES


def run_table1() -> Table:
    """Build Table 1 (fill-job categories)."""
    table = Table(
        columns=["size", "model", "parameters (M)", "job type", "training allowed"],
        title="Table 1: Fill job categories",
        formats={"parameters (M)": ".1f"},
    )
    order = ["efficientnet", "bert-base", "bert-large", "swin-large", "xlm-roberta-xl"]
    for name in order:
        category = FILL_JOB_CATEGORIES[name]
        model = build_model(name)
        table.add_row(
            category.size_class,
            name,
            model.param_count / 1e6,
            category.domain,
            "yes" if category.allows_training else "no (inference only)",
        )
    return table

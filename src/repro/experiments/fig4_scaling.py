"""Figure 4 (and Figure 1): scaling the 40B main job from 1K to 8K GPUs.

* **4a** -- days to train versus GPU count (traditional PP and PipeFill,
  whose main-job slowdown at the default fill fraction is <2%).
* **4b** -- pipeline bubble ratio versus GPU count.
* **4c / Figure 1** -- per-GPU TFLOP/s versus GPU count for traditional PP,
  PipeFill with the trace mix, and PipeFill with BERT-inference-only fill
  jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.config import PipeFillConfig
from repro.core.system import PipeFillSystem
from repro.experiments.common import (
    DEFAULT_HORIZON_SECONDS,
    GPU_SCALE_SWEEP,
    TOTAL_TRAINING_TOKENS,
    build_workload,
    main_job_model,
    make_40b_parallel,
)
from repro.sim.mainjob import AnalyticMainJob
from repro.utils.tables import Table


@dataclass(frozen=True)
class ScalePoint:
    """One GPU-count point of the Figure 1/4 sweep."""

    num_gpus: int
    days_to_train: float
    bubble_ratio: float
    traditional_tflops: float
    pipefill_trace_mix_tflops: float
    pipefill_bert_inference_tflops: float
    main_job_slowdown: float


def evaluate_scale_point(
    num_gpus: int,
    *,
    horizon_seconds: float = DEFAULT_HORIZON_SECONDS,
    schedule: str = "gpipe",
    config: Optional[PipeFillConfig] = None,
    seed: int = 0,
) -> ScalePoint:
    """Evaluate traditional PP and both PipeFill workloads at one scale."""
    model = main_job_model("gpt-40b")
    parallel = make_40b_parallel(num_gpus)
    main_job = AnalyticMainJob(model=model, parallel=parallel, schedule=schedule)

    totals: Dict[str, float] = {}
    slowdown = 0.0
    for workload in ("trace-mix", "bert-inference"):
        system = PipeFillSystem(
            model, parallel, schedule=schedule, config=config or PipeFillConfig()
        )
        jobs = build_workload(horizon_seconds, workload=workload, seed=seed)
        report = system.run(jobs, horizon_seconds=horizon_seconds)
        totals[workload] = report.utilization.total_tflops_per_device
        slowdown = report.utilization.main_job_slowdown

    return ScalePoint(
        num_gpus=num_gpus,
        days_to_train=main_job.days_to_train(TOTAL_TRAINING_TOKENS),
        bubble_ratio=main_job.bubble_ratio,
        traditional_tflops=main_job.tflops_per_device,
        pipefill_trace_mix_tflops=totals["trace-mix"],
        pipefill_bert_inference_tflops=totals["bert-inference"],
        main_job_slowdown=slowdown,
    )


def run_fig4(
    gpu_counts: Sequence[int] = GPU_SCALE_SWEEP,
    *,
    horizon_seconds: float = DEFAULT_HORIZON_SECONDS,
    seed: int = 0,
) -> Table:
    """Run the Figure 1 / Figure 4 GPU-count sweep."""
    table = Table(
        columns=[
            "gpus",
            "days to train",
            "bubble ratio",
            "traditional TFLOPS/GPU",
            "PipeFill trace-mix TFLOPS/GPU",
            "PipeFill BERT-inf TFLOPS/GPU",
            "main-job slowdown",
        ],
        title="Figure 4: scaling the 40B LLM from 1K to 8K GPUs",
        formats={
            "days to train": ".1f",
            "bubble ratio": ".3f",
            "traditional TFLOPS/GPU": ".1f",
            "PipeFill trace-mix TFLOPS/GPU": ".1f",
            "PipeFill BERT-inf TFLOPS/GPU": ".1f",
            "main-job slowdown": ".3f",
        },
    )
    for num_gpus in gpu_counts:
        point = evaluate_scale_point(num_gpus, horizon_seconds=horizon_seconds, seed=seed)
        table.add_row(
            point.num_gpus,
            point.days_to_train,
            point.bubble_ratio,
            point.traditional_tflops,
            point.pipefill_trace_mix_tflops,
            point.pipefill_bert_inference_tflops,
            point.main_job_slowdown,
        )
    return table

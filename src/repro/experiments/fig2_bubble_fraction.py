"""Figure 2: bubble growth when replicating the pipeline.

The figure illustrates how doubling the number of pipeline replicas (with
the global minibatch fixed) halves the microbatch count per replica and
inflates the idle fraction; the text notes the bubble fraction grows by
about 40% in the illustrated 4-stage / 4-microbatch example.
"""

from __future__ import annotations

from repro.pipeline.parallelism import bubble_fraction
from repro.utils.tables import Table


def run_fig2(num_stages: int = 4, base_microbatches: int = 4) -> Table:
    """Bubble fraction before and after doubling the data-parallel degree."""
    table = Table(
        columns=["configuration", "microbatches per replica", "bubble fraction"],
        title="Figure 2: bubble fraction when doubling the number of pipelines",
        formats={"bubble fraction": ".3f"},
    )
    base = bubble_fraction(num_stages, base_microbatches)
    doubled = bubble_fraction(num_stages, max(1, base_microbatches // 2))
    table.add_row("1x pipelines", base_microbatches, base)
    table.add_row("2x pipelines", base_microbatches // 2, doubled)
    table.add_row("relative increase", None, doubled / base - 1.0)
    return table

"""Figure 7: fill-job characterisation.

* **7a** -- recovered GPU TFLOP/s (FLOPs divided by the bubble durations
  used) for each fill-job model and job type, compared against the ~60
  TFLOP/s the main job sustains while executing.
* **7b** -- slowdown of each fill-job type relative to exclusive execution
  on a dedicated GPU.
"""

from __future__ import annotations

from typing import Optional

from repro.core.executor import FillJobExecutor
from repro.experiments.common import main_job_model, make_40b_parallel
from repro.models.configs import JobType
from repro.models.registry import build_model
from repro.sim.mainjob import AnalyticMainJob
from repro.utils.tables import Table
from repro.workloads.fill_jobs import FILL_JOB_CATEGORIES, category_for_model

#: GPU count whose bubble cycle the characterisation uses (the 8K setting).
DEFAULT_GPU_COUNT = 8192

#: Stage whose bubble cycle is used (a middle stage).
DEFAULT_STAGE = 8


def run_fig7(
    *,
    num_gpus: int = DEFAULT_GPU_COUNT,
    stage_id: int = DEFAULT_STAGE,
    executor: Optional[FillJobExecutor] = None,
) -> Table:
    """Per-model, per-job-type recovered TFLOPS and slowdown."""
    if executor is None:
        main_job = AnalyticMainJob(
            model=main_job_model("gpt-40b"), parallel=make_40b_parallel(num_gpus)
        )
        executor = FillJobExecutor(main_job.bubble_cycle(stage_id))

    table = Table(
        columns=[
            "model",
            "job type",
            "recovered TFLOPS (7a)",
            "relative performance (7b)",
            "slowdown (7b)",
            "execution config",
        ],
        title="Figure 7: fill-job characterisation in the 8K-GPU bubble cycle",
        formats={
            "recovered TFLOPS (7a)": ".2f",
            "relative performance (7b)": ".3f",
            "slowdown (7b)": ".2f",
        },
    )
    for name in sorted(FILL_JOB_CATEGORIES):
        model = build_model(name)
        for job_type in category_for_model(name).job_types():
            estimate = executor.build_estimate(model, job_type)
            if estimate is None:
                table.add_row(name, job_type.value, None, None, None, "does not fit")
                continue
            table.add_row(
                name,
                job_type.value,
                estimate.recovered_tflops,
                estimate.relative_performance,
                estimate.slowdown,
                estimate.profile.config.describe(),
            )
    return table

"""Figure 10: sensitivity of recovered TFLOPS to bubble size and free memory.

* **10a** -- the main-job model is scaled from 50% to 200% of its original
  size (which scales the bubble durations proportionally) with the bubble
  free memory fixed at 4.5 GB; recovered TFLOPS changes little.
* **10b** -- the main-job size (and hence bubble durations) is fixed and the
  free memory during bubbles is swept from 2 GB to 8 GB; recovered TFLOPS
  improves with memory but with diminishing returns.

Both sweeps use the paper's Section 6.2 metric directly: the *recovered
TFLOPS* of each fill-job type (FLOPs executed divided by the bubble time
used), averaged over the Table 1 fill-job mix.  Measuring through the full
scheduler instead would confound the sweep with queueing effects (e.g. a
smaller memory budget rejects the least efficient jobs and can *raise*
aggregate throughput), which is not what the figure studies.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.executor import FillJobExecutor
from repro.experiments.common import main_job_model, make_40b_parallel
from repro.models.configs import JobType
from repro.models.registry import build_model
from repro.models.transformer import GPT_40B_CONFIG, scale_transformer
from repro.pipeline.bubbles import BubbleCycle
from repro.sim.mainjob import AnalyticMainJob, PAPER_BUBBLE_FREE_MEMORY_BYTES
from repro.utils.tables import Table
from repro.utils.units import GIB
from repro.workloads.fill_jobs import category_for_model
from repro.workloads.model_hub import default_distribution

DEFAULT_MODEL_SCALES: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0)
DEFAULT_FREE_MEMORY_GB: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0)

#: Stage whose bubble cycle the sweep uses (a middle stage).
_STAGE = 8


def _mix_weights() -> Dict[Tuple[str, JobType], float]:
    """Sampling weight of every (model, job type) pair in the trace mix."""
    distribution = default_distribution()
    weights: Dict[Tuple[str, JobType], float] = {}
    for name, prob in distribution.probabilities.items():
        job_types = category_for_model(name).job_types()
        for job_type in job_types:
            weights[(name, job_type)] = prob / len(job_types)
    return weights


def _mix_recovered_tflops(cycle: BubbleCycle) -> float:
    """Trace-mix-weighted recovered TFLOPS on one bubble cycle."""
    executor = FillJobExecutor(cycle)
    weights = _mix_weights()
    total = 0.0
    for (name, job_type), weight in weights.items():
        estimate = executor.build_estimate(build_model(name), job_type)
        if estimate is None:
            # A job type that does not fit the bubbles recovers nothing but
            # still occupies its share of the workload mix; dropping it from
            # the average would make *less* memory look better.
            continue
        total += weight * estimate.recovered_tflops
    return total


def run_fig10a(
    model_scales: Sequence[float] = DEFAULT_MODEL_SCALES,
    *,
    num_gpus: int = 8192,
    free_memory_bytes: float = PAPER_BUBBLE_FREE_MEMORY_BYTES,
    horizon_seconds: Optional[float] = None,
) -> Table:
    """Sweep the main-job model size (and therefore bubble durations).

    ``horizon_seconds`` is accepted for interface symmetry with the other
    harnesses but unused (the metric is horizon-free).
    """
    del horizon_seconds
    parallel = make_40b_parallel(num_gpus)
    table = Table(
        columns=["model scale", "bubble duration scale", "recovered TFLOPS/GPU"],
        title="Figure 10a: recovered TFLOPS vs bubble size",
        formats={
            "model scale": ".2f",
            "bubble duration scale": ".2f",
            "recovered TFLOPS/GPU": ".2f",
        },
    )
    reference_bubble: Optional[float] = None
    rows = []
    for scale in model_scales:
        model = scale_transformer(GPT_40B_CONFIG, scale)
        main_job = AnalyticMainJob(
            model=model,
            parallel=parallel,
            bubble_free_memory_bytes=free_memory_bytes,
        )
        cycle = main_job.bubble_cycle(_STAGE)
        if scale == 1.0:
            reference_bubble = cycle.fillable_time
        rows.append((scale, cycle.fillable_time, _mix_recovered_tflops(cycle)))
    if reference_bubble is None:
        reference_bubble = rows[0][1]
    for scale, fillable, tflops in rows:
        table.add_row(scale, fillable / reference_bubble, tflops)
    return table


def run_fig10b(
    free_memory_gb: Sequence[float] = DEFAULT_FREE_MEMORY_GB,
    *,
    num_gpus: int = 8192,
    horizon_seconds: Optional[float] = None,
) -> Table:
    """Sweep the free memory exposed to fill jobs during bubbles."""
    del horizon_seconds
    model = main_job_model("gpt-40b")
    parallel = make_40b_parallel(num_gpus)
    table = Table(
        columns=["free memory (GB)", "recovered TFLOPS/GPU"],
        title="Figure 10b: recovered TFLOPS vs bubble free memory",
        formats={"free memory (GB)": ".1f", "recovered TFLOPS/GPU": ".2f"},
    )
    for free_gb in free_memory_gb:
        main_job = AnalyticMainJob(
            model=model, parallel=parallel, bubble_free_memory_bytes=free_gb * GIB
        )
        cycle = main_job.bubble_cycle(_STAGE)
        table.add_row(free_gb, _mix_recovered_tflops(cycle))
    return table

"""Shared experiment setup: main-job configurations and workloads.

All experiments use the two main jobs of Section 5.2:

* the **40B** LLM with 8-way tensor parallelism and 16 pipeline stages,
  data-parallel-scaled from 1K to 16K GPUs (simulator experiments), and
* the **5B** LLM with 16 pipeline stages and no tensor parallelism on 16
  GPUs (physical-cluster experiments), run at 8 microbatches per replica,
  which yields the 65% bubble ratio the paper reports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.scheduler import FillJob
from repro.models.configs import JobType
from repro.models.registry import build_model
from repro.pipeline.parallelism import ParallelConfig, microbatches_for_cluster
from repro.utils.rng import RngLike
from repro.workloads.generator import build_fill_job_trace

#: GPU counts swept in Figures 1 and 4.  (The paper also shows a 6K point;
#: with the fixed 1024-sample global batch and microbatch size 2 that data-
#: parallel degree does not divide evenly, so the sweep uses powers of two.)
GPU_SCALE_SWEEP: tuple[int, ...] = (1024, 2048, 4096, 8192)

#: GPU counts swept in the schedule comparison (Figure 8).
GPU_SCALE_SWEEP_WIDE: tuple[int, ...] = (2048, 4096, 8192, 16384)

#: Total training tokens of the 40B main job; chosen so the 1K-GPU run takes
#: ~82 days, matching Figure 4a (a LLaMA-class 1.4T-token budget).
TOTAL_TRAINING_TOKENS = 1.4e12

#: Default simulated wall-clock horizon for utilization measurements.
DEFAULT_HORIZON_SECONDS = 2.0 * 3600.0

#: Default fill-job arrival rate; high enough to keep bubbles saturated, as
#: the paper assumes a backlog of pending jobs.
DEFAULT_ARRIVAL_RATE_PER_HOUR = 400.0

#: The base (one-replica) 40B-parameter configuration: tp8 x pp16 = 128 GPUs.
_BASE_40B = ParallelConfig(
    tensor_parallel=8,
    pipeline_stages=16,
    data_parallel=8,
    microbatch_size=2,
    global_batch_size=1024,
)


def make_40b_parallel(num_gpus: int) -> ParallelConfig:
    """The 40B main job scaled to ``num_gpus`` accelerators."""
    return microbatches_for_cluster(_BASE_40B, num_gpus)


def make_5b_parallel() -> ParallelConfig:
    """The 5B physical-cluster main job (16 GPUs per replica, m=8, 65% bubbles)."""
    return ParallelConfig(
        tensor_parallel=1,
        pipeline_stages=16,
        data_parallel=64,
        microbatch_size=2,
        global_batch_size=1024,
    )


def main_job_model(name: str = "gpt-40b"):
    """Build (cached) one of the main-job LLMs."""
    return build_model(name)


def build_workload(
    horizon_seconds: float = DEFAULT_HORIZON_SECONDS,
    *,
    workload: str = "trace-mix",
    arrival_rate_per_hour: float = DEFAULT_ARRIVAL_RATE_PER_HOUR,
    deadline_fraction: float = 0.0,
    seed: RngLike = 0,
) -> List[FillJob]:
    """Build one of the paper's fill-job workloads.

    ``workload`` is either ``"trace-mix"`` (the full Table 1 mix driven by
    the synthetic cluster trace) or ``"bert-inference"`` (the
    bubble-friendly BERT-base batch-inference-only workload of Figure 4c).
    """
    if workload == "trace-mix":
        return build_fill_job_trace(
            horizon_seconds,
            arrival_rate_per_hour=arrival_rate_per_hour,
            deadline_fraction=deadline_fraction,
            seed=seed,
        )
    if workload == "bert-inference":
        return build_fill_job_trace(
            horizon_seconds,
            arrival_rate_per_hour=arrival_rate_per_hour,
            models=["bert-base"],
            job_type=JobType.BATCH_INFERENCE,
            deadline_fraction=deadline_fraction,
            seed=seed,
        )
    raise ValueError(f"unknown workload {workload!r}")


def mixed_model_workload(
    horizon_seconds: float,
    fraction_second_model: float,
    *,
    first_model: str = "xlm-roberta-xl",
    second_model: str = "efficientnet",
    arrival_rate_per_hour: float = DEFAULT_ARRIVAL_RATE_PER_HOUR,
    seed: RngLike = 0,
) -> List[FillJob]:
    """A two-model mix sweeping from all-``first_model`` to all-``second_model``.

    Used by the Figure 6 validation experiment (all-XLM-inference at one end,
    all-EfficientNet-training at the other).
    """
    from repro.workloads.generator import FillJobTraceBuilder
    from repro.workloads.model_hub import ModelHubDistribution
    from repro.workloads.trace import TraceGenerator

    if not 0.0 <= fraction_second_model <= 1.0:
        raise ValueError("fraction_second_model must be in [0, 1]")
    probs = {
        first_model: 1.0 - fraction_second_model,
        second_model: fraction_second_model,
    }
    probs = {k: v for k, v in probs.items() if v > 0.0}
    builder = FillJobTraceBuilder(distribution=ModelHubDistribution(probs), seed=seed)
    generator = TraceGenerator(arrival_rate_per_hour=arrival_rate_per_hour, seed=seed)
    return builder.generate(horizon_seconds, trace_generator=generator, rng=seed)

"""Figure 8: GPipe versus 1F1B fill-job utilization across cluster sizes.

PipeFill does not fill 1F1B's small non-contiguous bubbles, so at small
scale (many microbatches, where those gaps are a large share of the total
bubble time) GPipe recovers noticeably more utilization; at large scale the
gap closes because the fill-drain and fwd-bwd bubbles dominate.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.system import PipeFillSystem
from repro.experiments.common import (
    GPU_SCALE_SWEEP_WIDE,
    build_workload,
    main_job_model,
    make_40b_parallel,
)
from repro.utils.tables import Table


def run_fig8(
    gpu_counts: Sequence[int] = GPU_SCALE_SWEEP_WIDE,
    *,
    horizon_seconds: float = 3600.0,
    seed: int = 0,
) -> Table:
    """Recovered fill-job TFLOPS under GPipe and 1F1B at several scales."""
    model = main_job_model("gpt-40b")
    table = Table(
        columns=[
            "gpus",
            "bubble ratio",
            "GPipe fill TFLOPS/GPU",
            "1F1B fill TFLOPS/GPU",
            "GPipe advantage",
        ],
        title="Figure 8: fill-job utilization with GPipe vs 1F1B",
        formats={
            "bubble ratio": ".3f",
            "GPipe fill TFLOPS/GPU": ".2f",
            "1F1B fill TFLOPS/GPU": ".2f",
            "GPipe advantage": ".3f",
        },
    )
    jobs = build_workload(horizon_seconds, workload="trace-mix", seed=seed)
    for num_gpus in gpu_counts:
        parallel = make_40b_parallel(num_gpus)
        results = {}
        for schedule in ("gpipe", "1f1b"):
            system = PipeFillSystem(model, parallel, schedule=schedule)
            report = system.run(jobs, horizon_seconds=horizon_seconds)
            results[schedule] = report.utilization.fill_tflops_per_device
        advantage = (
            results["gpipe"] / results["1f1b"] - 1.0 if results["1f1b"] > 0 else float("inf")
        )
        table.add_row(
            num_gpus,
            parallel.bubble_fraction,
            results["gpipe"],
            results["1f1b"],
            advantage,
        )
    return table

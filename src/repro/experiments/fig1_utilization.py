"""Figure 1: per-GPU utilization of the 40B LLM, traditional PP vs PipeFill.

Figure 1 is the headline view of the Figure 4c data: TFLOP/s per GPU versus
GPU count for traditional pipeline parallelism (LLM only) and for PipeFill
(LLM plus fill jobs).  This harness reuses the Figure 4 sweep and projects
out the two headline series.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import DEFAULT_HORIZON_SECONDS, GPU_SCALE_SWEEP
from repro.experiments.fig4_scaling import evaluate_scale_point
from repro.utils.tables import Table


def run_fig1(
    gpu_counts: Sequence[int] = GPU_SCALE_SWEEP,
    *,
    horizon_seconds: float = DEFAULT_HORIZON_SECONDS,
    seed: int = 0,
) -> Table:
    """TFLOP/s per GPU, traditional PP versus PipeFill (trace mix)."""
    table = Table(
        columns=["gpus", "Traditional PP (LLM only)", "PipeFill (LLM + fill jobs)", "gain"],
        title="Figure 1: utilization of LLM training GPUs",
        formats={
            "Traditional PP (LLM only)": ".1f",
            "PipeFill (LLM + fill jobs)": ".1f",
            "gain": ".2f",
        },
    )
    for num_gpus in gpu_counts:
        point = evaluate_scale_point(num_gpus, horizon_seconds=horizon_seconds, seed=seed)
        gain = point.pipefill_trace_mix_tflops / point.traditional_tflops - 1.0
        table.add_row(
            num_gpus,
            point.traditional_tflops,
            point.pipefill_trace_mix_tflops,
            gain,
        )
    return table

"""Figure 6: simulator validation across fill-job mixes.

The paper validates its event-driven simulator against the physical cluster
by sweeping the fill-job mix from all-XLM batch inference (the largest
model) to all-EfficientNet training (the smallest and the only CNN) on the
5B main job, and reports a maximum simulator error below 2%.

Our substitution: the "physical" side is the instrumented pipeline engine's
replay (realistic stage imbalance, measured bubble windows), the
"simulator" side is the analytic uniform-stage main-job model feeding the
same event-driven simulator.  The experiment reports the recovered FLOPS of
both paths and their relative error for every mix point.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.system import PipeFillSystem
from repro.experiments.common import main_job_model, make_5b_parallel, mixed_model_workload
from repro.utils.tables import Table

#: Fraction of EfficientNet-training jobs in the mix (the rest is XLM inference).
DEFAULT_MIX_POINTS: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)


def run_fig6(
    mix_points: Sequence[float] = DEFAULT_MIX_POINTS,
    *,
    horizon_seconds: float = 1800.0,
    seed: int = 0,
) -> Table:
    """Compare engine-seeded and analytic-seeded simulations across fill mixes."""
    model = main_job_model("gpt-5b")
    parallel = make_5b_parallel()

    table = Table(
        columns=[
            "EfficientNet fraction",
            "physical recovered TFLOPS/GPU",
            "simulator recovered TFLOPS/GPU",
            "relative error",
        ],
        title="Figure 6: simulator vs physical execution across fill-job mixes",
        formats={
            "EfficientNet fraction": ".2f",
            "physical recovered TFLOPS/GPU": ".2f",
            "simulator recovered TFLOPS/GPU": ".2f",
            "relative error": ".3f",
        },
    )
    for fraction in mix_points:
        jobs = mixed_model_workload(horizon_seconds, fraction, seed=seed)
        physical = PipeFillSystem(model, parallel, use_engine=True).run(
            jobs, horizon_seconds=horizon_seconds
        )
        simulated = PipeFillSystem(model, parallel, use_engine=False).run(
            jobs, horizon_seconds=horizon_seconds
        )
        phys = physical.utilization.fill_tflops_per_device
        sim = simulated.utilization.fill_tflops_per_device
        error = abs(sim - phys) / phys if phys > 0 else 0.0
        table.add_row(fraction, phys, sim, error)
    return table

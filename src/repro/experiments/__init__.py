"""Experiment harnesses: one module per table/figure of the paper.

Every harness returns one or more :class:`repro.utils.tables.Table` objects
carrying exactly the rows/series the corresponding figure plots; the
benchmark suite under ``benchmarks/`` runs them and asserts the qualitative
shape, and :mod:`repro.experiments.report` collects them into
``EXPERIMENTS.md``.
"""

from repro.experiments.common import (
    GPU_SCALE_SWEEP,
    TOTAL_TRAINING_TOKENS,
    make_40b_parallel,
    make_5b_parallel,
    build_workload,
)
from repro.experiments.table1_fill_jobs import run_table1
from repro.experiments.fig2_bubble_fraction import run_fig2
from repro.experiments.fig1_utilization import run_fig1
from repro.experiments.fig4_scaling import run_fig4
from repro.experiments.fig5_fill_fraction import run_fig5
from repro.experiments.fig6_sim_validation import run_fig6
from repro.experiments.fig7_fill_job_char import run_fig7
from repro.experiments.fig8_schedules import run_fig8
from repro.experiments.fig9_policies import run_fig9
from repro.experiments.fig10_sensitivity import run_fig10a, run_fig10b

__all__ = [
    "GPU_SCALE_SWEEP",
    "TOTAL_TRAINING_TOKENS",
    "make_40b_parallel",
    "make_5b_parallel",
    "build_workload",
    "run_table1",
    "run_fig1",
    "run_fig2",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10a",
    "run_fig10b",
]

"""``repro.exec`` -- the supervised execution runtime.

Long multi-point workloads (``Experiment.sweep`` grids, fuzz campaigns)
used to run on a bare ``ProcessPoolExecutor.map``: one OOM-killed worker
aborted the whole grid, a hung plan search stalled it forever, and an
interrupt threw away every completed point.  This package is the
robustness spine that replaces it:

* :mod:`repro.exec.supervisor` -- a :class:`Supervisor` that dispatches
  tasks to worker processes, detects crashes (nonzero/signal exits) and
  hangs (per-task wall-clock timeout), retries with exponential backoff
  up to a budget, and records a structured :class:`TaskOutcome` per task
  instead of aborting the batch;
* :mod:`repro.exec.journal` -- an append-only JSONL :class:`SweepJournal`
  (atomic, truncation-tolerant) keyed by the content digest of each grid
  point, giving ``repro sweep --resume <sweep_id>`` checkpoint/resume
  with bit-identical merged results;
* :mod:`repro.exec.chaos` -- registry-backed fault injectors (worker
  kills, hangs, raised exceptions, cache-file truncation) so the
  runtime's own guarantees are property-tested, not assumed.
"""

from repro.exec.chaos import ChaosError, ChaosPlan, reset_chaos_state
from repro.exec.journal import JournalState, SweepJournal, content_digest
from repro.exec.supervisor import (
    RetryPolicy,
    SupervisedTask,
    Supervisor,
    TaskFailure,
    TaskOutcome,
)

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "JournalState",
    "RetryPolicy",
    "SupervisedTask",
    "Supervisor",
    "SweepJournal",
    "TaskFailure",
    "TaskOutcome",
    "content_digest",
    "reset_chaos_state",
]

"""The append-only sweep journal: crash-safe checkpoint/resume state.

One journal lives per sweep at ``<root>/<sweep_id>/journal.jsonl``
(``root`` defaults to ``.repro-cache/sweeps/`` via the CLI).  Every
record is a single JSON line; by default each is flushed and fsynced as
it is written, so the journal survives the process being killed at any
instant: the worst case is a torn final line, which
:meth:`SweepJournal.read` skips (and counts) instead of failing.  There
is no index to corrupt and the directory is safe to delete at any time
-- a missing journal just means a sweep starts from scratch.

Sweeps whose points are much cheaper than an fsync (sharded fleets on
network filesystems, many-point grids of tiny scenarios) can batch the
fsyncs: ``SweepJournal(path, flush_every_records=K,
flush_max_seconds=T)`` fsyncs after every K records *or* once T seconds
have passed since the last fsync, whichever comes first, and always on
:meth:`~SweepJournal.close`.  Batching trades the crash window from "the
point in flight" to "at most the last K (or T seconds of) completed
points" -- re-running a lost point is always safe, so this is a pure
durability/throughput dial; the torn-line recovery guarantee is
unchanged because lines are still written whole.

Records
-------
``{"record": "sweep", ...}``
    The header: ``sweep_id``, scenario name, swept parameter, the
    ``grid_digest`` (content digest of every grid point, used to refuse
    resuming against a different grid) and ``num_points``.
``{"record": "point", "key": ..., "payload": {...}}``
    One completed grid point: the content digest of the applied scenario
    document (``key``), the swept value, the attempt count and the full
    simulation-core payload.  Payloads are plain JSON, and JSON
    round-trips ints and floats exactly, so a resumed merge is
    bit-identical to an uninterrupted run.
``{"record": "failure", "key": ..., ...}``
    One point that exhausted its retry budget, with the structured
    failure (kind/type/message).  Failed points are *re-attempted* on
    resume; a later ``point`` record for the same key supersedes the
    failure.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Schema tag stamped into every journal header.
JOURNAL_SCHEMA = "repro-sweep-journal/v1"

#: The journal file name inside ``<root>/<sweep_id>/``.
JOURNAL_FILENAME = "journal.jsonl"


def content_digest(doc: Any) -> str:
    """Stable 16-hex content digest of a JSON-serialisable document.

    Keys grid points (digest of the fully-applied scenario document) and
    whole grids; ``default=str`` keeps exotic scalar overrides hashable.
    """
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class JournalState:
    """Everything a resume needs, reconstructed from the journal lines."""

    header: Optional[Dict[str, Any]]
    #: Completed points by grid-point key (latest record wins).
    completed: Dict[str, Dict[str, Any]]
    #: Exhausted-retry failures by key, minus keys later completed.
    failed: Dict[str, Dict[str, Any]]
    #: Lines that did not parse (torn writes, truncation, garbage).
    corrupt_lines: int


class SweepJournal:
    """Writer/reader for one sweep's ``journal.jsonl``.

    ``flush_every_records``/``flush_max_seconds`` batch the per-record
    fsyncs (see the module docstring); the defaults keep the original
    fsync-every-record durability.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        flush_every_records: int = 1,
        flush_max_seconds: Optional[float] = None,
    ) -> None:
        if flush_every_records < 1:
            raise ValueError(
                f"flush_every_records must be >= 1, got {flush_every_records}"
            )
        if flush_max_seconds is not None and flush_max_seconds <= 0:
            raise ValueError(
                f"flush_max_seconds must be positive, got {flush_max_seconds}"
            )
        self.path = Path(path)
        self.flush_every_records = int(flush_every_records)
        self.flush_max_seconds = flush_max_seconds
        self._fh = None
        self._unflushed = 0
        self._last_flush = time.monotonic()

    @classmethod
    def for_sweep(
        cls,
        root: Union[str, Path],
        sweep_id: str,
        *,
        flush_every_records: int = 1,
        flush_max_seconds: Optional[float] = None,
    ) -> "SweepJournal":
        """The journal under ``<root>/<sweep_id>/journal.jsonl``."""
        return cls(
            Path(root) / str(sweep_id) / JOURNAL_FILENAME,
            flush_every_records=flush_every_records,
            flush_max_seconds=flush_max_seconds,
        )

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing -----------------------------------------------------------------

    def start(self, header: Dict[str, Any]) -> None:
        """Begin a fresh journal (truncating any previous run's file)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._last_flush = time.monotonic()
        self._append({"record": "sweep", "schema": JOURNAL_SCHEMA, **header})

    def open_append(self) -> None:
        """Reopen an existing journal to append resume-run records."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._last_flush = time.monotonic()

    def record_completed(
        self,
        key: str,
        *,
        parameter: str,
        value: Any,
        attempts: int,
        payload: Dict[str, Any],
    ) -> None:
        self._append(
            {
                "record": "point",
                "key": key,
                "parameter": parameter,
                "value": value,
                "attempts": int(attempts),
                "payload": payload,
            }
        )

    def record_failed(
        self,
        key: str,
        *,
        parameter: str,
        value: Any,
        attempts: int,
        kind: str,
        error_type: str,
        message: str,
    ) -> None:
        self._append(
            {
                "record": "failure",
                "key": key,
                "parameter": parameter,
                "value": value,
                "attempts": int(attempts),
                "kind": kind,
                "error_type": error_type,
                "message": message,
            }
        )

    def _append(self, record: Dict[str, Any]) -> None:
        assert self._fh is not None, "journal not opened (start/open_append)"
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        # Default: flush + fsync per record, so a killed sweep loses at
        # most the point in flight.  With batching, fsync when either
        # the record budget or the time budget since the last fsync is
        # spent (and unconditionally on close()).
        self._unflushed += 1
        if self._unflushed >= self.flush_every_records or (
            self.flush_max_seconds is not None
            and time.monotonic() - self._last_flush >= self.flush_max_seconds
        ):
            self._sync()

    def _sync(self) -> None:
        assert self._fh is not None
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._unflushed = 0
        self._last_flush = time.monotonic()

    def close(self) -> None:
        if self._fh is not None:
            if self._unflushed:
                self._sync()
            self._fh.close()
            self._fh = None

    # -- reading -----------------------------------------------------------------

    def read(self) -> JournalState:
        """Reconstruct the journal state, skipping unparseable lines."""
        header: Optional[Dict[str, Any]] = None
        completed: Dict[str, Dict[str, Any]] = {}
        failed: Dict[str, Dict[str, Any]] = {}
        corrupt = 0
        if not self.path.exists():
            return JournalState(None, {}, {}, 0)
        with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    corrupt += 1
                    continue
                if not isinstance(record, dict):
                    corrupt += 1
                    continue
                kind = record.get("record")
                if kind == "sweep":
                    header = record
                elif kind == "point" and "key" in record and "payload" in record:
                    completed[record["key"]] = record
                    failed.pop(record["key"], None)
                elif kind == "failure" and "key" in record:
                    if record["key"] not in completed:
                        failed[record["key"]] = record
                else:
                    corrupt += 1
        return JournalState(header, completed, failed, corrupt)

"""The append-only sweep journal: crash-safe checkpoint/resume state.

One journal lives per sweep at ``<root>/<sweep_id>/journal.jsonl``
(``root`` defaults to ``.repro-cache/sweeps/`` via the CLI).  Every
record is a single JSON line, flushed and fsynced as it is written, so
the journal survives the process being killed at any instant: the worst
case is a torn final line, which :meth:`SweepJournal.read` skips (and
counts) instead of failing.  There is no index to corrupt and the
directory is safe to delete at any time -- a missing journal just means
a sweep starts from scratch.

Records
-------
``{"record": "sweep", ...}``
    The header: ``sweep_id``, scenario name, swept parameter, the
    ``grid_digest`` (content digest of every grid point, used to refuse
    resuming against a different grid) and ``num_points``.
``{"record": "point", "key": ..., "payload": {...}}``
    One completed grid point: the content digest of the applied scenario
    document (``key``), the swept value, the attempt count and the full
    simulation-core payload.  Payloads are plain JSON, and JSON
    round-trips ints and floats exactly, so a resumed merge is
    bit-identical to an uninterrupted run.
``{"record": "failure", "key": ..., ...}``
    One point that exhausted its retry budget, with the structured
    failure (kind/type/message).  Failed points are *re-attempted* on
    resume; a later ``point`` record for the same key supersedes the
    failure.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Schema tag stamped into every journal header.
JOURNAL_SCHEMA = "repro-sweep-journal/v1"

#: The journal file name inside ``<root>/<sweep_id>/``.
JOURNAL_FILENAME = "journal.jsonl"


def content_digest(doc: Any) -> str:
    """Stable 16-hex content digest of a JSON-serialisable document.

    Keys grid points (digest of the fully-applied scenario document) and
    whole grids; ``default=str`` keeps exotic scalar overrides hashable.
    """
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class JournalState:
    """Everything a resume needs, reconstructed from the journal lines."""

    header: Optional[Dict[str, Any]]
    #: Completed points by grid-point key (latest record wins).
    completed: Dict[str, Dict[str, Any]]
    #: Exhausted-retry failures by key, minus keys later completed.
    failed: Dict[str, Dict[str, Any]]
    #: Lines that did not parse (torn writes, truncation, garbage).
    corrupt_lines: int


class SweepJournal:
    """Writer/reader for one sweep's ``journal.jsonl``."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = None

    @classmethod
    def for_sweep(cls, root: Union[str, Path], sweep_id: str) -> "SweepJournal":
        """The journal under ``<root>/<sweep_id>/journal.jsonl``."""
        return cls(Path(root) / str(sweep_id) / JOURNAL_FILENAME)

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing -----------------------------------------------------------------

    def start(self, header: Dict[str, Any]) -> None:
        """Begin a fresh journal (truncating any previous run's file)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._append({"record": "sweep", "schema": JOURNAL_SCHEMA, **header})

    def open_append(self) -> None:
        """Reopen an existing journal to append resume-run records."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def record_completed(
        self,
        key: str,
        *,
        parameter: str,
        value: Any,
        attempts: int,
        payload: Dict[str, Any],
    ) -> None:
        self._append(
            {
                "record": "point",
                "key": key,
                "parameter": parameter,
                "value": value,
                "attempts": int(attempts),
                "payload": payload,
            }
        )

    def record_failed(
        self,
        key: str,
        *,
        parameter: str,
        value: Any,
        attempts: int,
        kind: str,
        error_type: str,
        message: str,
    ) -> None:
        self._append(
            {
                "record": "failure",
                "key": key,
                "parameter": parameter,
                "value": value,
                "attempts": int(attempts),
                "kind": kind,
                "error_type": error_type,
                "message": message,
            }
        )

    def _append(self, record: Dict[str, Any]) -> None:
        assert self._fh is not None, "journal not opened (start/open_append)"
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        # Flush + fsync per record: a killed sweep loses at most the
        # point in flight, never a completed one.
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading -----------------------------------------------------------------

    def read(self) -> JournalState:
        """Reconstruct the journal state, skipping unparseable lines."""
        header: Optional[Dict[str, Any]] = None
        completed: Dict[str, Dict[str, Any]] = {}
        failed: Dict[str, Dict[str, Any]] = {}
        corrupt = 0
        if not self.path.exists():
            return JournalState(None, {}, {}, 0)
        with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    corrupt += 1
                    continue
                if not isinstance(record, dict):
                    corrupt += 1
                    continue
                kind = record.get("record")
                if kind == "sweep":
                    header = record
                elif kind == "point" and "key" in record and "payload" in record:
                    completed[record["key"]] = record
                    failed.pop(record["key"], None)
                elif kind == "failure" and "key" in record:
                    if record["key"] not in completed:
                        failed[record["key"]] = record
                else:
                    corrupt += 1
        return JournalState(header, completed, failed, corrupt)

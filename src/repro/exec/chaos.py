"""Chaos injectors: deterministic fault injection for the supervisor.

The simulator models infrastructure failures (``faults:`` blocks, fault
models) and verifies invariants under them -- this module applies the
same discipline to the execution runtime itself.  A :class:`ChaosPlan`
rides into every supervised attempt and decides, deterministically from
``(seed, task key, attempt)``, whether to fire a registered *injector*
before the task body runs.  The shipped injectors cover the failure
modes the supervisor must survive:

``kill``
    ``SIGKILL`` the worker process -- the OOM-killer / crashed-worker
    path (process mode only; inline it would kill the caller).
``sleep``
    Sleep past any sane deadline -- the hung-plan-search path, exercised
    together with a per-task timeout.
``exception``
    Raise :class:`ChaosError` -- the task-raised-an-error path.
``interrupt``
    Raise ``KeyboardInterrupt`` after N successful injection checks --
    the deterministic Ctrl-C-mid-sweep path (inline mode).
``truncate-cache``
    Truncate a persistent plan-cache entry -- the torn/corrupt cache
    file path (must degrade to a quarantined miss, never a crash).

Injectors are registry entries (:data:`repro.registry.chaos_injectors`),
so plugins can register their own via
:func:`repro.registry.register_chaos_injector` and address them by name
from ``repro sweep --chaos <name>`` exactly like fault models.

Determinism matters: the decision hash makes a chaos campaign
reproducible (same seed, same grid, same injected failures), which is
what lets CI assert that a chaos-ridden sweep merges bit-identically to
a clean one.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.registry import chaos_injectors, register_chaos_injector


class ChaosError(RuntimeError):
    """The error raised by the ``exception`` injector."""


#: Stateful-injector call counters, keyed by (plan seed, injector name).
#: Only meaningful within one process (inline mode); forked/spawned
#: workers start fresh, which the stateful injectors document.
_CALL_COUNTS: Dict[Tuple[int, str], int] = {}


def reset_chaos_state() -> None:
    """Reset stateful injector counters (tests and repeated campaigns)."""
    _CALL_COUNTS.clear()


@dataclass(frozen=True)
class ChaosPlan:
    """When and what to inject, decided per ``(task key, attempt)``.

    ``params`` is stored as a sorted tuple of pairs so plans stay frozen
    and picklable (they cross process boundaries with every attempt);
    build plans with :meth:`build` to pass params as a plain dict.
    """

    injector: str
    params: Tuple[Tuple[str, Any], ...] = ()
    #: Probability that an eligible attempt is injected (1.0 = always).
    probability: float = 1.0
    #: Inject only on attempts ``<= max_attempt`` -- the default of 1
    #: fails first attempts and lets retries succeed.
    max_attempt: int = 1
    seed: int = 0

    @classmethod
    def build(
        cls,
        injector: str,
        params: Optional[Mapping[str, Any]] = None,
        *,
        probability: float = 1.0,
        max_attempt: int = 1,
        seed: int = 0,
    ) -> "ChaosPlan":
        """Construct a plan with ``params`` given as a mapping."""
        return cls(
            injector=injector,
            params=tuple(sorted((params or {}).items())),
            probability=float(probability),
            max_attempt=int(max_attempt),
            seed=int(seed),
        )

    def should_inject(self, key: str, attempt: int) -> bool:
        """The deterministic injection decision for one attempt."""
        if attempt > self.max_attempt:
            return False
        if self.probability >= 1.0:
            return True
        if self.probability <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(2**64)
        return draw < self.probability

    def maybe_inject(self, key: str, attempt: int) -> None:
        """Fire the injector if this attempt is selected."""
        if not self.should_inject(key, attempt):
            return
        injector = chaos_injectors.get(self.injector)
        injector(key=key, attempt=attempt, **dict(self.params))


# -- shipped injectors ---------------------------------------------------------------


@register_chaos_injector("kill")
def kill_injector(*, key: str, attempt: int, sig: str = "SIGKILL") -> None:
    """Kill the current process with ``sig`` (default SIGKILL).

    Simulates an OOM-killed or segfaulted worker: no exception, no exit
    handler, no result -- the supervisor must notice the corpse.
    """
    os.kill(os.getpid(), getattr(signal, str(sig)))


@register_chaos_injector("sleep")
def sleep_injector(*, key: str, attempt: int, seconds: float = 3600.0) -> None:
    """Sleep ``seconds`` before the task body -- a hang, for timeout tests."""
    time.sleep(float(seconds))


@register_chaos_injector("exception")
def exception_injector(
    *, key: str, attempt: int, message: str = "chaos: injected failure"
) -> None:
    """Raise :class:`ChaosError` -- a task that errors instead of crashing."""
    raise ChaosError(f"{message} (key={key}, attempt={attempt})")


@register_chaos_injector("interrupt")
def interrupt_injector(*, key: str, attempt: int, after_points: int = 0) -> None:
    """Raise ``KeyboardInterrupt`` after ``after_points`` injection checks.

    Stateful (a per-process counter), so an inline sweep completes
    ``after_points`` points and is then "Ctrl-C'd" deterministically --
    the reproducible test for interrupt/flush/resume.  Call
    :func:`reset_chaos_state` between campaigns.
    """
    counter_key = (0, "interrupt")
    _CALL_COUNTS[counter_key] = _CALL_COUNTS.get(counter_key, 0) + 1
    if _CALL_COUNTS[counter_key] > int(after_points):
        raise KeyboardInterrupt(f"chaos: injected interrupt (key={key})")


@register_chaos_injector("truncate-cache")
def truncate_cache_injector(
    *,
    key: str,
    attempt: int,
    directory: Optional[str] = None,
    keep_bytes: int = 8,
) -> None:
    """Truncate one persistent plan-cache entry to ``keep_bytes`` bytes.

    Picks the entry deterministically from the task key.  The victim
    becomes an unreadable pickle, which the cache must quarantine to
    ``<entry>.corrupt`` and treat as a miss -- results stay identical,
    just slower.  A disabled/empty cache makes this a no-op.
    """
    from repro.utils import plancache

    if directory is not None:
        root = Path(directory)
    elif plancache.is_enabled() and plancache.cache_dir() is not None:
        root = plancache.cache_dir() / "estimates"
    else:
        return
    entries = sorted(root.glob("*.pkl")) if root.is_dir() else []
    if not entries:
        return
    pick = int(hashlib.sha256(key.encode()).hexdigest(), 16) % len(entries)
    try:
        os.truncate(entries[pick], max(0, int(keep_bytes)))
    except OSError:
        pass

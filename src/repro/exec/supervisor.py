"""The supervisor: crash-, hang- and error-tolerant task execution.

A :class:`Supervisor` runs a batch of :class:`SupervisedTask`\\ s through
a worker function and *always* returns one :class:`TaskOutcome` per
task -- a worker that raises, crashes (OOM-kill, segfault, nonzero
exit) or hangs (per-task wall-clock timeout) costs one attempt, not the
batch.  Failed attempts are retried with exponential backoff up to
``RetryPolicy.max_retries``; a task that exhausts its budget yields a
structured :class:`TaskFailure` instead of an exception.

Two execution modes:

*process mode* (``workers > 1``, or ``inline=False``)
    Every attempt runs in its own worker process with a result pipe
    back to the supervisor.  One process per attempt -- not a shared
    pool -- is what makes the guarantees enforceable: a SIGKILL'd
    attempt takes down only its own process (no ``BrokenProcessPool``
    poisoning a shared pool), and a hung attempt can be terminated
    without stranding pool state.  Task payloads and results must be
    picklable.

*inline mode* (``workers <= 1`` by default)
    Attempts run in the calling process: exceptions are caught and
    retried with the same backoff, but kills and timeouts cannot be
    detected (there is no second process to do the detecting).  This
    preserves the historical ``workers=1`` sweep semantics, including
    support for unpicklable registered callables.

``KeyboardInterrupt`` always propagates to the caller; in process mode
the supervisor first terminates every in-flight worker and drops the
pending queue (the moral equivalent of ``shutdown(cancel_futures=True)``
on the pool it replaces), so the interrupt leaves no orphans behind.

A :class:`~repro.exec.chaos.ChaosPlan` can be attached to inject faults
into attempts deterministically -- the supervisor's own guarantees are
tested with the failures it claims to survive.
"""

from __future__ import annotations

import multiprocessing as mp
import signal
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.chaos import ChaosPlan


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout/backoff budget applied to every task of a batch."""

    #: Extra attempts after the first (total attempts = ``max_retries + 1``).
    max_retries: int = 2
    #: Per-attempt wall-clock limit; ``None`` disables hang detection.
    timeout_seconds: Optional[float] = None
    #: Delay before the first retry; later retries grow geometrically.
    backoff_seconds: float = 0.5
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 30.0

    def delay_before_attempt(self, attempt: int) -> float:
        """Backoff delay before attempt ``attempt`` (1-based; first is free)."""
        if attempt <= 1:
            return 0.0
        return min(
            self.backoff_seconds * (self.backoff_factor ** (attempt - 2)),
            self.backoff_max_seconds,
        )


@dataclass(frozen=True)
class SupervisedTask:
    """One unit of work: a unique key plus a picklable payload."""

    key: str
    payload: Any
    description: str = ""


@dataclass(frozen=True)
class TaskFailure:
    """Why a task attempt (or the whole task) failed.

    ``kind`` is one of ``"exception"`` (the worker function raised),
    ``"crash"`` (the worker process died without reporting a result) or
    ``"timeout"`` (no result within the deadline; the worker was killed).
    """

    kind: str
    error_type: str
    message: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.error_type}: {self.message}"


@dataclass(frozen=True)
class TaskOutcome:
    """The final, structured result of one supervised task."""

    key: str
    ok: bool
    attempts: int
    result: Any = None
    failure: Optional[TaskFailure] = None


def _child_main(conn, fn, key: str, attempt: int, chaos, payload) -> None:
    """Worker-process entry point: run one attempt, send one message."""
    try:
        if chaos is not None:
            chaos.maybe_inject(key, attempt)
        status: Tuple = ("ok", fn(payload))
    except BaseException as exc:  # noqa: BLE001 - forwarded, not swallowed
        status = ("error", type(exc).__name__, str(exc) or type(exc).__name__)
    try:
        conn.send(status)
    except Exception as exc:
        # An unpicklable result must become a structured failure, not a
        # silent crash of the worker.
        try:
            conn.send(("error", type(exc).__name__, f"could not send result: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


class _Attempt:
    """Parent-side bookkeeping for one in-flight worker process."""

    __slots__ = ("task", "attempt", "process", "conn", "deadline")

    def __init__(self, task, attempt, process, conn, deadline):
        self.task = task
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.deadline = deadline


class Supervisor:
    """Run tasks through ``fn`` with crash/hang/retry supervision.

    Parameters
    ----------
    fn:
        The worker function ``fn(payload) -> result``.  In process mode
        it must be a module-level (picklable) callable.
    workers:
        Concurrent attempts in process mode; ``<= 1`` selects inline
        mode unless ``inline=False`` forces supervised processes.
    retry:
        The :class:`RetryPolicy`; defaults to 2 retries, no timeout.
    chaos:
        Optional :class:`~repro.exec.chaos.ChaosPlan` injected into
        every attempt (fault-injection testing).
    on_outcome / on_retry:
        Parent-side callbacks: ``on_outcome(outcome)`` fires once per
        task as its final outcome lands (journaling, progress);
        ``on_retry(task, attempt, failure, delay)`` fires before each
        backoff sleep.
    mp_context:
        Multiprocessing context (default: the platform default).
    sleep:
        Injectable sleep for tests.
    """

    #: Poll/backoff granularity of the event loop (seconds).
    _TICK = 0.5

    def __init__(
        self,
        fn: Callable[[Any], Any],
        *,
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosPlan] = None,
        inline: Optional[bool] = None,
        on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
        on_retry: Optional[Callable[[SupervisedTask, int, TaskFailure, float], None]] = None,
        mp_context=None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.fn = fn
        self.workers = max(1, int(workers))
        self.retry = retry or RetryPolicy()
        self.chaos = chaos
        self.inline = (int(workers) <= 1) if inline is None else bool(inline)
        self.on_outcome = on_outcome
        self.on_retry = on_retry
        self._ctx = mp_context or mp.get_context()
        self._sleep = sleep

    def run(self, tasks: Sequence[SupervisedTask]) -> List[TaskOutcome]:
        """Execute every task; outcomes come back in task order."""
        tasks = list(tasks)
        keys = [t.key for t in tasks]
        if len(set(keys)) != len(keys):
            raise ValueError("supervised task keys must be unique")
        if not tasks:
            return []
        if self.inline:
            return self._run_inline(tasks)
        return self._run_processes(tasks)

    # -- inline mode -------------------------------------------------------------

    def _run_inline(self, tasks: List[SupervisedTask]) -> List[TaskOutcome]:
        outcomes: List[TaskOutcome] = []
        for task in tasks:
            attempt = 0
            while True:
                attempt += 1
                failure: Optional[TaskFailure] = None
                result: Any = None
                try:
                    if self.chaos is not None:
                        self.chaos.maybe_inject(task.key, attempt)
                    result = self.fn(task.payload)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    failure = TaskFailure(
                        "exception", type(exc).__name__, str(exc) or type(exc).__name__
                    )
                if failure is None:
                    outcome = TaskOutcome(task.key, True, attempt, result=result)
                    break
                if attempt <= self.retry.max_retries:
                    delay = self.retry.delay_before_attempt(attempt + 1)
                    if self.on_retry is not None:
                        self.on_retry(task, attempt, failure, delay)
                    if delay > 0:
                        self._sleep(delay)
                    continue
                outcome = TaskOutcome(task.key, False, attempt, failure=failure)
                break
            outcomes.append(outcome)
            if self.on_outcome is not None:
                self.on_outcome(outcome)
        return outcomes

    # -- process mode ------------------------------------------------------------

    def _run_processes(self, tasks: List[SupervisedTask]) -> List[TaskOutcome]:
        outcomes: Dict[str, TaskOutcome] = {}
        ready = deque((task, 1) for task in tasks)
        delayed: List[Tuple[float, SupervisedTask, int]] = []
        running: Dict[str, _Attempt] = {}
        try:
            while ready or delayed or running:
                now = time.monotonic()
                if delayed:
                    due = [entry for entry in delayed if entry[0] <= now]
                    if due:
                        delayed = [e for e in delayed if e[0] > now]
                        ready.extend((task, attempt) for _, task, attempt in due)
                while ready and len(running) < self.workers:
                    task, attempt = ready.popleft()
                    running[task.key] = self._launch(task, attempt)
                self._wait(running, delayed)
                now = time.monotonic()
                for key in list(running):
                    att = running[key]
                    finished, failure, result = self._poll_attempt(att, now)
                    if not finished:
                        continue
                    del running[key]
                    if failure is None:
                        outcome = TaskOutcome(key, True, att.attempt, result=result)
                    elif att.attempt <= self.retry.max_retries:
                        delay = self.retry.delay_before_attempt(att.attempt + 1)
                        if self.on_retry is not None:
                            self.on_retry(att.task, att.attempt, failure, delay)
                        delayed.append((now + delay, att.task, att.attempt + 1))
                        continue
                    else:
                        outcome = TaskOutcome(key, False, att.attempt, failure=failure)
                    outcomes[key] = outcome
                    if self.on_outcome is not None:
                        self.on_outcome(outcome)
        finally:
            # Interrupt/error path: cancel pending work and leave no
            # orphaned workers (cancel_futures=True semantics).
            for att in running.values():
                self._kill_attempt(att)
        return [outcomes[task.key] for task in tasks]

    def _launch(self, task: SupervisedTask, attempt: int) -> _Attempt:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_child_main,
            args=(child_conn, self.fn, task.key, attempt, self.chaos, task.payload),
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = None
        if self.retry.timeout_seconds is not None:
            deadline = time.monotonic() + float(self.retry.timeout_seconds)
        return _Attempt(task, attempt, process, parent_conn, deadline)

    def _wait(self, running: Dict[str, _Attempt], delayed) -> None:
        """Block until a worker event, a deadline or a backoff expiry is near."""
        now = time.monotonic()
        timeout = self._TICK
        deadlines = [a.deadline for a in running.values() if a.deadline is not None]
        if deadlines:
            timeout = min(timeout, max(min(deadlines) - now, 0.0))
        if delayed:
            timeout = min(timeout, max(min(e[0] for e in delayed) - now, 0.0))
        if not running:
            if timeout > 0:
                self._sleep(timeout)
            return
        handles: List[Any] = []
        for att in running.values():
            handles.append(att.conn)
            handles.append(att.process.sentinel)
        mp_connection.wait(handles, timeout=timeout)

    def _poll_attempt(
        self, att: _Attempt, now: float
    ) -> Tuple[bool, Optional[TaskFailure], Any]:
        """Check one in-flight attempt: ``(finished, failure, result)``."""
        msg = self._recv(att)
        if msg is None and not att.process.is_alive():
            # The result may have landed between the first poll and the
            # process exiting -- poll once more before declaring a crash.
            msg = self._recv(att)
            if msg is None:
                att.process.join()
                att.conn.close()
                return True, self._crash_failure(att.process.exitcode), None
        if msg is not None:
            att.process.join(timeout=5.0)
            att.conn.close()
            if msg[0] == "ok":
                return True, None, msg[1]
            return True, TaskFailure("exception", msg[1], msg[2]), None
        if att.deadline is not None and now >= att.deadline:
            self._kill_attempt(att)
            return (
                True,
                TaskFailure(
                    "timeout",
                    "WorkerTimeout",
                    f"no result within {self.retry.timeout_seconds:g}s; worker killed",
                ),
                None,
            )
        return False, None, None

    @staticmethod
    def _recv(att: _Attempt):
        try:
            if att.conn.poll():
                return att.conn.recv()
        except (EOFError, OSError):
            pass
        return None

    @staticmethod
    def _crash_failure(exitcode: Optional[int]) -> TaskFailure:
        if exitcode is not None and exitcode < 0:
            try:
                what = f"killed by {signal.Signals(-exitcode).name}"
            except ValueError:
                what = f"killed by signal {-exitcode}"
        else:
            what = f"exited with code {exitcode}"
        return TaskFailure(
            "crash", "WorkerCrash", f"worker {what} without reporting a result"
        )

    @staticmethod
    def _kill_attempt(att: _Attempt) -> None:
        process = att.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        else:
            process.join(timeout=1.0)
        try:
            att.conn.close()
        except OSError:
            pass

"""Entry point for ``python -m repro`` (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

sys.exit(main())

"""PipeFill reproduction library.

``repro`` is a from-scratch, simulation-based reproduction of *PipeFill:
Using GPUs During Bubbles in Pipeline-parallel LLM Training* (MLSys 2025).

The package is organised in layers:

* :mod:`repro.hardware` -- simulated accelerators, memory allocators, nodes
  and cluster topology.
* :mod:`repro.models` -- analytical model zoo (transformer LLM main jobs and
  the five fill-job architectures) with per-layer FLOPs / memory accounting.
* :mod:`repro.pipeline` -- pipeline-parallel substrate: stage partitioning,
  GPipe / 1F1B schedules, and an instrumented pipeline engine.
* :mod:`repro.core` -- the PipeFill contribution: pipeline bubble
  instructions, bubble profiling, the fill-job execution planner
  (Algorithm 1), the per-device executor, main-job offloading, the
  policy-driven fill-job scheduler, and the cross-tenant
  :class:`~repro.core.global_scheduler.GlobalScheduler`.
* :mod:`repro.sim` -- the event-driven cluster simulator used for the
  large-scale experiments, its multi-tenant extension, and declarative
  scenario specs.
* :mod:`repro.workloads` -- fill-job categories, the synthetic model-hub
  distribution, Alibaba-style trace generation and per-tenant arrival
  streams.
* :mod:`repro.experiments` -- one harness per paper table/figure.
* :mod:`repro.api` -- the stable public library API: the
  :class:`~repro.api.Experiment` facade, typed results with a versioned
  JSON schema, and streaming run observers.  **Embed through this.**
* :mod:`repro.registry` -- unified plugin registries (policies,
  preemption rules, arrival processes, fault models, bench sizes) with
  ``repro.plugins`` entry-point discovery.
* :mod:`repro.cli` -- the ``python -m repro run|sweep|report`` command
  line, a thin shell over :mod:`repro.api`.
"""

from repro._version import __version__

__all__ = ["__version__"]

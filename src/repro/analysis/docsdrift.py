"""CLI/docs drift: every user-facing flag must be documented.

``cli.py`` is the reproduction's public surface; a flag that exists in
``argparse`` but nowhere in the docs is a feature users cannot
discover, and an invitation for the docs to describe behavior the CLI
no longer has.  The rule is deliberately one-directional (CLI -> docs):
prose may mention historical or external flags freely.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.core import AnalysisRule, Finding, ModuleInfo, Project
from repro.registry import register_analysis_rule


def _constant_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def iter_cli_surface(module: ModuleInfo) -> Iterable[Tuple[str, str, ast.AST]]:
    """``(kind, name, node)`` for every constant-named flag/subcommand.

    * ``("flag", "--seed", node)`` for each ``add_argument("--seed", ...)``
      long option (single-dash shorthands ride along with their long
      form and are not reported separately);
    * ``("subcommand", "sweep", node)`` for each ``add_parser("sweep")``.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr == "add_argument":
            longs: List[str] = []
            shorts: List[Tuple[str, ast.AST]] = []
            for arg in node.args:
                text = _constant_str(arg)
                if text is None or not text.startswith("-"):
                    continue
                if text.startswith("--"):
                    longs.append(text)
                else:
                    shorts.append((text, arg))
            for text in longs:
                yield ("flag", text, node)
            if not longs:
                for text, arg in shorts:
                    yield ("flag", text, node)
        elif func.attr == "add_parser":
            name = _constant_str(node.args[0]) if node.args else None
            if name is not None:
                yield ("subcommand", name, node)


@register_analysis_rule("cli-docs")
class CliDocsRule(AnalysisRule):
    """argparse flags and subcommands in cli.py must appear in the docs."""

    id = "cli-docs"
    family = "docs"
    description = (
        "every long option and subcommand that cli.py registers with "
        "argparse must be mentioned in README.md or docs/*.md"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        cli = project.module_by_suffix("repro/cli.py")
        if cli is None:
            return
        docs = project.docs_texts()
        if not docs:
            return  # fixture trees without docs: nothing to drift from
        corpus = "\n".join(text for _, text in docs)
        seen: Set[Tuple[str, str]] = set()
        for kind, name, node in iter_cli_surface(cli):
            if (kind, name) in seen:
                continue
            seen.add((kind, name))
            if kind == "flag":
                # Flags are recognizably documented only with the dashes.
                documented = name in corpus
            else:
                documented = (
                    f"repro {name}" in corpus
                    or f"`{name}`" in corpus
                    or f"m repro {name}" in corpus
                )
            if not documented:
                yield self.finding(
                    cli,
                    node,
                    f"CLI {kind} {name!r} is not mentioned in README.md or "
                    f"docs/*.md; document it (or lint-ignore a deliberately "
                    f"hidden {kind})",
                )

"""The AST analysis engine behind ``python -m repro lint``.

The engine is deliberately small: it parses every linted file once into
a :class:`ModuleInfo` (source, AST, an import alias map for qualified
name resolution, and the file's suppression comments), hands the parsed
modules to every registered :class:`AnalysisRule`, and post-processes
the raw findings through the suppression layer.  Rules come from the
``analysis_rules`` registry (:mod:`repro.registry`), so plugins extend
the analyzer exactly like they extend policies or invariants::

    from repro.api import register_analysis_rule
    from repro.analysis import AnalysisRule, Finding

    @register_analysis_rule("no-print")
    class NoPrint(AnalysisRule):
        id = "no-print"
        family = "style"
        description = "print() calls do not belong in library code"

        def check_module(self, module):
            import ast
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Call)
                    and module.resolve(node.func) == "print"
                ):
                    yield self.finding(module, node, "print() call")

Suppressions are explicit and auditable: a ``# repro:
lint-ignore[rule-id]`` comment on the flagged line (or on a comment
line directly above it) silences that rule there, ideally with a reason
(``# repro: lint-ignore[rule-id] -- identity memo, never ordered``).
A suppression that silences nothing is itself reported (rule id
``unused-suppression``), so stale ignores cannot accumulate.  Files
that fail to parse surface as ``parse-error`` findings instead of
crashing the run.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.registry import analysis_rules

#: Version stamped into ``repro lint --format json`` payloads.
LINT_SCHEMA_VERSION = 1

#: Engine-produced pseudo-rule ids (not in the registry, never filtered
#: out by ``--rule`` and not suppressible).
PARSE_ERROR = "parse-error"
UNUSED_SUPPRESSION = "unused-suppression"
INTERNAL_ERROR = "internal-error"

#: Matched against COMMENT tokens only, anchored at the comment start,
#: so lint-ignore markers quoted inside docstrings or prose comments
#: (like this module's docstring) are not live suppressions.
_SUPPRESSION_RE = re.compile(
    r"^#\s*repro:\s*lint-ignore\[([^\]]+)\]\s*(?:(?:--|:)\s*(.*))?"
)

#: Digest-affecting module paths: the modules whose behaviour feeds the
#: golden result digests, where determinism rules apply (matched against
#: the posix relpath).  ``bench/``, ``exec/``, ``verify/`` and the CLI
#: are free to read wall clocks; these are not.
_DIGEST_PATH_RE = re.compile(
    r"(^|/)(sim|core|pipeline)/[^/]+\.py$"
    r"|(^|/)dist/sharding\.py$"
    r"|(^|/)utils/plancache\.py$"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding: a rule id anchored at ``file:line``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One ``# repro: lint-ignore[...]`` comment in a file."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str
    #: Rule ids this suppression actually silenced (filled by the engine).
    used_for: List[str] = field(default_factory=list)

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids or "*" in self.rule_ids


class ModuleInfo:
    """One parsed python file plus the lookup tables rules need.

    ``tree`` is ``None`` when the file failed to parse (the engine
    reports a ``parse-error`` finding and rules never see the module).
    """

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source)
        except (SyntaxError, ValueError) as exc:  # ValueError: null bytes
            self.parse_error = exc if isinstance(exc, SyntaxError) else None
            if self.parse_error is None:
                self.parse_error = SyntaxError(str(exc))
        #: ``local alias -> dotted qualified name`` from every import in
        #: the file (scope-insensitive by design: a file that rebinds an
        #: import name locally is doing something rules should look at).
        self.aliases: Dict[str, str] = {}
        #: Names bound at module level (defs, classes, assignments,
        #: imports) -- used to tell a shadowed ``hash`` from the builtin.
        self.module_names: set = set()
        self.suppressions: Dict[int, Suppression] = self._scan_suppressions()
        if self.tree is not None:
            self._index(self.tree)

    # -- indexing ----------------------------------------------------------------

    def _index(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``, which resolves to ``a``.
                        local = alias.name.split(".")[0]
                        self.aliases[local] = local
            elif isinstance(node, ast.ImportFrom):
                # Relative imports keep the module tail only -- good enough
                # for matching well-known suffixes like ``observers``.
                base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        root = self.tree
        if isinstance(root, ast.Module):
            for node in root.body:
                for name in _bound_names(node):
                    self.module_names.add(name)

    def _scan_suppressions(self) -> Dict[int, Suppression]:
        found: Dict[int, Suppression] = {}
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except Exception:
            # Unparseable/untokenizable source is already a parse-error
            # finding; there are no live suppressions in it.
            return found
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            lineno = token.start[0]
            match = _SUPPRESSION_RE.match(token.string)
            if not match:
                continue
            ids = tuple(
                token.strip().lower()
                for token in match.group(1).split(",")
                if token.strip()
            )
            if ids:
                found[lineno] = Suppression(
                    line=lineno, rule_ids=ids, reason=(match.group(2) or "").strip()
                )
        return found

    # -- helpers for rules --------------------------------------------------------

    @property
    def is_digest_module(self) -> bool:
        """Whether this file's behaviour feeds the golden result digests."""
        return bool(_DIGEST_PATH_RE.search(Path(self.relpath).as_posix()))

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted qualified name of a ``Name``/``Attribute`` chain.

        ``import numpy as np; np.random.rand`` resolves to
        ``numpy.random.rand``; ``from time import time; time()`` resolves
        to ``time.time``.  A chain not rooted at a plain name (calls,
        subscripts, ...) resolves to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def suppression_for(self, line: int) -> Optional[Suppression]:
        """The suppression covering ``line``: same line, or the nearest
        run of comment-only lines directly above it."""
        if line in self.suppressions:
            return self.suppressions[line]
        probe = line - 1
        while probe >= 1 and self._is_comment_line(probe):
            if probe in self.suppressions:
                return self.suppressions[probe]
            probe -= 1
        return None

    def _is_comment_line(self, line: int) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        stripped = self.lines[line - 1].strip()
        return stripped.startswith("#")


class Project:
    """The whole lint invocation: parsed modules plus repo-level files."""

    def __init__(self, root: Path, modules: Sequence[ModuleInfo]) -> None:
        self.root = root
        self.modules = list(modules)
        self._text_cache: Dict[str, Optional[str]] = {}

    def module_by_suffix(self, suffix: str) -> Optional[ModuleInfo]:
        """The parsed module whose posix relpath ends with ``suffix``."""
        for module in self.modules:
            if Path(module.relpath).as_posix().endswith(suffix):
                return module
        return None

    def read_text(self, relpath: str) -> Optional[str]:
        """Contents of a repo file (``None`` when absent), cached."""
        if relpath not in self._text_cache:
            path = self.root / relpath
            try:
                self._text_cache[relpath] = path.read_text()
            except OSError:
                self._text_cache[relpath] = None
        return self._text_cache[relpath]

    def docs_texts(self) -> List[Tuple[str, str]]:
        """``(relpath, text)`` of README.md plus every docs/*.md present."""
        texts: List[Tuple[str, str]] = []
        readme = self.read_text("README.md")
        if readme is not None:
            texts.append(("README.md", readme))
        docs_dir = self.root / "docs"
        if docs_dir.is_dir():
            for path in sorted(docs_dir.glob("*.md")):
                text = self.read_text(f"docs/{path.name}")
                if text is not None:
                    texts.append((f"docs/{path.name}", text))
        return texts


class AnalysisRule:
    """Base class of analyzer rules.

    Subclasses set ``id`` (the suppression / ``--rule`` token),
    ``family`` and ``description``, then override :meth:`check_module`
    (called once per parsed file) and/or :meth:`check_project` (called
    once per lint invocation, for cross-file contracts).  Both yield
    :class:`Finding` objects; :meth:`finding` builds one anchored at an
    AST node.
    """

    id: str = ""
    family: str = ""
    description: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(
        self,
        module: ModuleInfo,
        node: Optional[ast.AST],
        message: str,
        *,
        line: Optional[int] = None,
    ) -> Finding:
        anchor = line if line is not None else getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule=self.id,
            path=module.relpath,
            line=int(anchor),
            col=int(col),
            message=message,
        )


@dataclass
class LintReport:
    """Outcome of one :func:`run_lint` invocation."""

    root: str
    files_checked: int
    rules: List[str]
    findings: List[Finding]
    suppressions_used: int
    suppressions_total: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": LINT_SCHEMA_VERSION,
            "root": self.root,
            "files_checked": self.files_checked,
            "rules": list(self.rules),
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts_by_rule(),
            "suppressions_used": self.suppressions_used,
            "suppressions_total": self.suppressions_total,
        }


def _bound_names(node: ast.AST) -> Iterator[str]:
    """Names a module-level statement binds (defs, classes, assignments)."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield node.name
    elif isinstance(node, ast.Assign):
        for target in node.targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    yield sub.id
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        yield node.target.id
    elif isinstance(node, (ast.Import, ast.ImportFrom)):
        for alias in node.names:
            if alias.name == "*":
                continue
            yield alias.asname or alias.name.split(".")[0]


def discover_files(paths: Sequence[str], root: Path) -> List[Path]:
    """Expand file/directory arguments into a sorted list of .py files."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.parts
                if any(p.startswith(".") or p == "__pycache__" for p in parts):
                    continue
                seen[candidate] = None
        elif path.suffix == ".py":
            seen[path] = None
        elif not path.exists():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
    return list(seen)


def load_rules(rule_ids: Optional[Sequence[str]] = None) -> List[AnalysisRule]:
    """Fresh instances of every registered rule (or the requested subset)."""
    names = analysis_rules.names()
    if rule_ids is not None:
        wanted = []
        for rule_id in rule_ids:
            key = str(rule_id).lower()
            if key not in names:
                raise KeyError(
                    f"unknown analysis rule {rule_id!r}; known: {names}"
                )
            wanted.append(key)
        names = wanted
    return [analysis_rules.get(name)() for name in names]


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[str],
    *,
    root: Optional[str] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) and return the report.

    ``root`` anchors relative finding paths and repo-level lookups
    (``docs/``, ``README.md``) and defaults to the current directory.
    ``rule_ids`` restricts the run to a subset of registered rules
    (``parse-error`` and ``unused-suppression`` reporting always stays
    on).
    """
    root_path = Path(root) if root is not None else Path.cwd()
    rules = load_rules(rule_ids)
    files = discover_files(paths, root_path)
    modules = [
        ModuleInfo(path, _relpath(path, root_path), path.read_text())
        for path in files
    ]
    raw_findings: List[Finding] = []
    parsed = [m for m in modules if m.tree is not None]
    for module in modules:
        if module.parse_error is not None:
            err = module.parse_error
            raw_findings.append(
                Finding(
                    rule=PARSE_ERROR,
                    path=module.relpath,
                    line=int(getattr(err, "lineno", None) or 1),
                    col=int(getattr(err, "offset", None) or 0),
                    message=f"file does not parse: {err.msg}",
                )
            )
    project = Project(root_path, parsed)
    for rule in rules:
        for module in parsed:
            raw_findings.extend(_guarded(rule, rule.check_module, module, module))
        raw_findings.extend(_guarded(rule, rule.check_project, project, None))

    by_relpath = {module.relpath: module for module in modules}
    kept: List[Finding] = []
    for finding in raw_findings:
        module = by_relpath.get(finding.path)
        if module is not None and finding.rule not in (
            PARSE_ERROR,
            UNUSED_SUPPRESSION,
            INTERNAL_ERROR,
        ):
            suppression = module.suppression_for(finding.line)
            if suppression is not None and suppression.covers(finding.rule):
                suppression.used_for.append(finding.rule)
                continue
        kept.append(finding)

    suppressions_total = 0
    suppressions_used = 0
    for module in modules:
        for suppression in module.suppressions.values():
            suppressions_total += 1
            if suppression.used_for:
                suppressions_used += 1
            else:
                kept.append(
                    Finding(
                        rule=UNUSED_SUPPRESSION,
                        path=module.relpath,
                        line=suppression.line,
                        col=0,
                        message=(
                            "suppression for "
                            + ", ".join(
                                f"'{rid}'" for rid in suppression.rule_ids
                            )
                            + " matched no finding; delete it (or fix the rule id)"
                        ),
                    )
                )

    kept.sort(key=Finding.sort_key)
    return LintReport(
        root=str(root_path),
        files_checked=len(modules),
        rules=[rule.id for rule in rules],
        findings=kept,
        suppressions_used=suppressions_used,
        suppressions_total=suppressions_total,
    )


def _guarded(rule: AnalysisRule, check, target, module) -> List[Finding]:
    """Run one rule hook, degrading an internal crash to a finding.

    A buggy (possibly third-party) rule must never take down the whole
    lint run; it becomes an ``internal-error`` finding naming the rule.
    """
    try:
        return list(check(target))
    except Exception as exc:  # pragma: no cover - exercised via fuzz tests
        path = module.relpath if module is not None else "<project>"
        return [
            Finding(
                rule=INTERNAL_ERROR,
                path=path,
                line=1,
                col=0,
                message=f"rule {rule.id!r} crashed: {type(exc).__name__}: {exc}",
            )
        ]


# -- output formats ------------------------------------------------------------------


def format_text(report: LintReport) -> str:
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"[{finding.rule}] {finding.message}"
        )
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"{len(report.findings)} {noun} in {report.files_checked} file(s); "
        f"{report.suppressions_used} of {report.suppressions_total} "
        f"suppression(s) used"
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def format_github(report: LintReport) -> str:
    """GitHub Actions workflow-command annotations (one per finding)."""
    lines = [
        f"::error file={f.path},line={f.line},col={f.col},"
        f"title=repro lint [{f.rule}]::{f.message}"
        for f in report.findings
    ]
    lines.append(
        f"repro lint: {len(report.findings)} finding(s), "
        f"{report.suppressions_used}/{report.suppressions_total} suppression(s) used"
    )
    return "\n".join(lines)


FORMATTERS = {"text": format_text, "json": format_json, "github": format_github}

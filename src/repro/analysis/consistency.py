"""Consistency rules: registries, docs tables and the result schema.

Three contracts that previously only failed at runtime (or never):

* ``registry-signature`` -- a callable registered under
  ``register_policy`` / ``register_preemption_rule`` / ... must
  actually satisfy that registry's calling protocol, checked from the
  AST at the registration site.
* ``registry-docs`` -- every name registered with a constant string
  must appear in the registry catalog tables of ``docs/api.md``
  (regenerating those tables is part of adding an entry).
* ``schema-drift`` -- every payload key a ``to_dict()`` in
  ``api/results.py`` emits must be named in ``api/schema.py``:
  the frozen schema-v1 validators may not silently fall behind the
  producers.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    AnalysisRule,
    Finding,
    ModuleInfo,
    Project,
)
from repro.registry import register_analysis_rule

#: ``register_* function name -> registry kind`` for every extension
#: point whose registration protocol the analyzer understands.
REGISTER_FUNCTIONS = {
    "register_policy": "policy",
    "register_preemption_rule": "preemption-rule",
    "register_arrival_process": "arrival-process",
    "register_fault_model": "fault-model",
    "register_chaos_injector": "chaos-injector",
    "register_invariant": "invariant",
    "register_kernel_backend": "kernel-backend",
    "register_analysis_rule": "analysis-rule",
    "register_bench_size": "bench-size",
    "register_fuzz_budget": "fuzz-budget",
}

#: Kinds whose registered names must appear in the docs catalog tables
#: (``docs/api.md``).  Bench sizes and fuzz budgets are value objects
#: registered under computed names and are documented by their modules.
DOCUMENTED_KINDS = (
    "policy",
    "preemption-rule",
    "arrival-process",
    "fault-model",
    "chaos-injector",
    "invariant",
    "kernel-backend",
    "analysis-rule",
)

#: Keyword names an arrival-process factory is called with
#: (:func:`repro.registry.register_arrival_process`).
ARRIVAL_PROCESS_KWARGS = frozenset(
    {
        "name",
        "arrival_rate_per_hour",
        "models",
        "job_type",
        "deadline_fraction",
        "deadline_slack_factor",
        "seed",
        "end_time",
    }
)


class Registration:
    """One statically-visible ``register_*`` site in a module."""

    def __init__(
        self,
        kind: str,
        name: Optional[str],
        node: ast.AST,
        target: Optional[ast.AST],
    ) -> None:
        self.kind = kind
        #: The registered name when it is a constant string, else None.
        self.name = name
        #: The AST node to anchor findings at (the registration site).
        self.node = node
        #: The registered def/class when resolvable in-module, else None.
        self.target = target


def _register_kind(module: ModuleInfo, func: ast.AST) -> Optional[str]:
    qualified = module.resolve(func)
    if qualified is None:
        return None
    return REGISTER_FUNCTIONS.get(qualified.split(".")[-1])


def _constant_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _object_name(call: ast.Call) -> Optional[str]:
    """The registered name of a value-object registration.

    ``register_bench_size(BenchSize(name="smoke", ...))`` registers
    under the object's ``name=`` field; recover it when it is a literal.
    """
    if call.args and isinstance(call.args[0], ast.Call):
        for keyword in call.args[0].keywords:
            if keyword.arg == "name":
                return _constant_str(keyword.value)
    return None


def iter_registrations(module: ModuleInfo) -> Iterator[Registration]:
    """Every ``register_*`` site in the module: decorators and calls."""
    defs: Dict[str, ast.AST] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defs.setdefault(node.name, node)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            # ``SMOKE_BUDGET = FuzzBudget(name="smoke", ...)`` -- remember
            # the constructor call so value registrations resolve names.
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defs.setdefault(target.id, node.value)

    decorator_calls = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                decorator_calls.add(id(decorator))
                kind = _register_kind(module, decorator.func)
                if kind is None:
                    continue
                name = _constant_str(decorator.args[0]) if decorator.args else None
                yield Registration(kind, name, decorator, node)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and id(node) not in decorator_calls:
            kind = _register_kind(module, node.func)
            if kind is None:
                continue
            if kind in ("bench-size", "fuzz-budget"):
                # Value-object registration: name comes from the object.
                name = _object_name(node)
                if name is None and node.args and isinstance(node.args[0], ast.Name):
                    # ``register_bench_size(SMOKE)`` where SMOKE was bound
                    # to a constructor call earlier in the module.
                    referenced = defs.get(node.args[0].id)
                    if isinstance(referenced, ast.Call):
                        for keyword in referenced.keywords:
                            if keyword.arg == "name":
                                name = _constant_str(keyword.value)
                yield Registration(kind, name, node, None)
                continue
            name = _constant_str(node.args[0]) if node.args else None
            target: Optional[ast.AST] = None
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Name):
                target = defs.get(node.args[1].id)
            yield Registration(kind, name, node, target)


# -- signature checking ---------------------------------------------------------------


def _positional_arity(args: ast.arguments) -> Tuple[int, int, bool]:
    """(min_positional, max_positional, has_vararg) of a def's signature."""
    positional = list(getattr(args, "posonlyargs", [])) + list(args.args)
    max_pos = len(positional)
    min_pos = max_pos - len(args.defaults)
    return min_pos, max_pos, args.vararg is not None


def _accepts_n_positional(args: ast.arguments, n: int, *, method: bool) -> bool:
    """Whether the callable can be invoked with exactly ``n`` positional
    arguments (and no keywords)."""
    min_pos, max_pos, vararg = _positional_arity(args)
    if method:
        min_pos = max(0, min_pos - 1)
        max_pos = max(0, max_pos - 1)
    kwonly_required = sum(
        1 for d in args.kw_defaults if d is None
    ) if args.kwonlyargs else 0
    if kwonly_required:
        return False
    if vararg:
        return min_pos <= n
    return min_pos <= n <= max_pos


def _param_names(args: ast.arguments, *, method: bool) -> Set[str]:
    names = [a.arg for a in getattr(args, "posonlyargs", [])] + [
        a.arg for a in args.args
    ]
    if method and names:
        names = names[1:]
    names += [a.arg for a in args.kwonlyargs]
    return set(names)


def _zero_arg_constructible(node: ast.AST) -> Optional[str]:
    """None when ``node`` is callable with zero args, else a complaint."""
    if isinstance(node, ast.ClassDef):
        init = next(
            (
                item
                for item in node.body
                if isinstance(item, ast.FunctionDef) and item.name == "__init__"
            ),
            None,
        )
        if init is None:
            return None  # inherited __init__; assume compatible
        if _accepts_n_positional(init.args, 0, method=True):
            return None
        return f"class {node.name}.__init__ requires arguments"
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        if _accepts_n_positional(node.args, 0, method=False):
            return None
        return f"function {node.name} requires arguments"
    return None


def _dataclass_fields(node: ast.ClassDef) -> Optional[Set[str]]:
    """Field names when ``node`` is decorated as a dataclass, else None."""
    is_dataclass = any(
        (isinstance(d, ast.Name) and d.id == "dataclass")
        or (isinstance(d, ast.Attribute) and d.attr == "dataclass")
        or (
            isinstance(d, ast.Call)
            and (
                (isinstance(d.func, ast.Name) and d.func.id == "dataclass")
                or (isinstance(d.func, ast.Attribute) and d.func.attr == "dataclass")
            )
        )
        for d in node.decorator_list
    )
    if not is_dataclass:
        return None
    return {
        item.target.id
        for item in node.body
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)
    }


def check_signature(kind: str, target: ast.AST) -> Optional[str]:
    """Protocol complaint for a registered def/class, or None when fine."""
    if kind in ("policy", "preemption-rule"):
        shape = (
            "(job, state, executor_index)"
            if kind == "policy"
            else "(arriving, running, state)"
        )
        if isinstance(target, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _accepts_n_positional(target.args, 3, method=False):
                return (
                    f"{kind} {target.name!r} must be callable as "
                    f"{target.name}{shape} -- 3 positional arguments"
                )
        return None
    if kind == "fault-model":
        if isinstance(target, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _accepts_n_positional(target.args, 2, method=False):
                # Keyword-only params are the model's own (defaulted or
                # scenario-supplied), so only the two positionals are
                # structural -- but required kw-only params without a
                # ``**params`` escape are fine here; re-check loosely.
                min_pos, max_pos, vararg = _positional_arity(target.args)
                if not (min_pos <= 2 and (vararg or max_pos >= 2)):
                    return (
                        f"fault model {target.name!r} must accept "
                        f"(tenants, horizon_seconds, **params)"
                    )
        return None
    if kind == "chaos-injector":
        if isinstance(target, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names = _param_names(target.args, method=False)
            if target.args.kwarg is None and not {"key", "attempt"} <= names:
                return (
                    f"chaos injector {target.name!r} must accept the "
                    f"keyword arguments 'key' and 'attempt' (or **params)"
                )
        return None
    if kind in ("invariant", "kernel-backend", "analysis-rule"):
        complaint = _zero_arg_constructible(target)
        if complaint is not None:
            return f"{kind} factories must be zero-argument: {complaint}"
        return None
    if kind == "arrival-process":
        expected = ARRIVAL_PROCESS_KWARGS
        if isinstance(target, ast.ClassDef):
            init = next(
                (
                    item
                    for item in target.body
                    if isinstance(item, ast.FunctionDef)
                    and item.name == "__init__"
                ),
                None,
            )
            if init is not None:
                names = _param_names(init.args, method=True)
                if init.args.kwarg is None and not expected <= names:
                    missing = sorted(expected - names)
                    return (
                        f"arrival process {target.name!r}.__init__ does not "
                        f"accept {missing} (add the parameters or **kwargs)"
                    )
                return None
            fields = _dataclass_fields(target)
            if fields is not None and not expected <= fields:
                missing = sorted(expected - fields)
                return (
                    f"arrival process dataclass {target.name!r} is missing "
                    f"the fields {missing}"
                )
            return None
        if isinstance(target, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names = _param_names(target.args, method=False)
            if target.args.kwarg is None and not expected <= names:
                missing = sorted(expected - names)
                return (
                    f"arrival process {target.name!r} does not accept "
                    f"{missing} (add the parameters or **kwargs)"
                )
        return None
    return None


@register_analysis_rule("registry-signature")
class RegistrySignatureRule(AnalysisRule):
    """Registered callables must satisfy their registry's protocol."""

    id = "registry-signature"
    family = "consistency"
    description = (
        "every @register_* callable's signature must match its "
        "registry's calling protocol (policies take (job, state, "
        "executor_index), invariant factories take zero args, ...)"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for registration in iter_registrations(module):
            if registration.target is None:
                continue
            complaint = check_signature(registration.kind, registration.target)
            if complaint is not None:
                yield self.finding(module, registration.node, complaint)


@register_analysis_rule("registry-docs")
class RegistryDocsRule(AnalysisRule):
    """Every registered name must appear in the docs/api.md catalog."""

    id = "registry-docs"
    family = "consistency"
    description = (
        "every statically-registered policy/preemption-rule/arrival-"
        "process/fault-model/chaos-injector/invariant/kernel-backend/"
        "analysis-rule name must appear (backticked) in docs/api.md"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        catalog = project.read_text("docs/api.md")
        if catalog is None:
            return  # fixture trees without docs: nothing to drift from
        for module in project.modules:
            for registration in iter_registrations(module):
                if registration.kind not in DOCUMENTED_KINDS:
                    continue
                if registration.name is None:
                    continue  # dynamic names (tests, oracles) are exempt
                if f"`{registration.name}`" in catalog:
                    continue
                yield self.finding(
                    module,
                    registration.node,
                    f"{registration.kind} {registration.name!r} is not in "
                    f"the docs/api.md registry catalog; add it to the "
                    f"`{registration.kind}` table (docs drift)",
                )


# -- schema drift ---------------------------------------------------------------------


def _emitted_keys(tree: ast.AST) -> List[Tuple[str, str, int]]:
    """``(class_name, key, line)`` for every constant payload key emitted
    inside a ``to_dict`` method."""
    out: List[Tuple[str, str, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if not (
                isinstance(item, ast.FunctionDef) and item.name == "to_dict"
            ):
                continue
            for sub in ast.walk(item):
                if isinstance(sub, ast.Dict):
                    for key_node in sub.keys:
                        key = _constant_str(key_node)
                        if key is not None:
                            out.append((node.name, key, key_node.lineno))
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Subscript):
                            key = _constant_str(target.slice)
                            if key is not None:
                                out.append((node.name, key, target.lineno))
    return out


def _string_constants(tree: ast.AST) -> Set[str]:
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


@register_analysis_rule("schema-drift")
class SchemaDriftRule(AnalysisRule):
    """to_dict() payload keys must be known to the schema validators.

    Compares every constant key emitted by a ``to_dict`` method in
    ``api/results.py`` against the string constants of
    ``api/schema.py`` (the validator vocabulary, including the
    ``METRICS_KEYS``/``TENANT_KEYS`` tables).  A producer emitting a key
    the validators never name is schema drift: the frozen-v1 guarantee
    would silently stop covering the new key.
    """

    id = "schema-drift"
    family = "consistency"
    description = (
        "every payload key emitted by a to_dict() in api/results.py "
        "must be named in the api/schema.py validators"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        results = project.module_by_suffix("api/results.py")
        if results is None:
            return
        schema = project.module_by_suffix("api/schema.py")
        schema_tree: Optional[ast.AST] = schema.tree if schema else None
        if schema_tree is None:
            # Linting results.py alone: read its sibling off disk.
            sibling = results.path.parent / "schema.py"
            try:
                schema_tree = ast.parse(sibling.read_text())
            except (OSError, SyntaxError):
                return
        vocabulary = _string_constants(schema_tree)
        seen: Set[Tuple[str, str]] = set()
        for class_name, key, line in _emitted_keys(results.tree):
            if key in vocabulary or (class_name, key) in seen:
                continue
            seen.add((class_name, key))
            yield self.finding(
                results,
                None,
                f"{class_name}.to_dict() emits payload key {key!r} that "
                f"api/schema.py never validates; extend the schema "
                f"validator (additively) or drop the key",
                line=line,
            )

"""Determinism rules: no entropy, no ordering hazards in digest paths.

Every rule here applies only to *digest-affecting* modules (``sim/``,
``core/``, ``pipeline/``, ``dist/sharding.py``, ``utils/plancache.py``
-- see :data:`repro.analysis.core._DIGEST_PATH_RE`): the code whose
behaviour feeds the golden result digests that pin bit-identical
reproduction.  Harness code (``bench/``, ``exec/``, the CLI) is free to
read wall clocks.

The one blessed exception inside digest modules is
``time.perf_counter``/``perf_counter_ns``: the kernel's per-event-kind
timing accumulator is explicitly digest-excluded (``timings_by_kind``
never feeds :func:`repro.api.result_digest`), so profiling reads are
allowed everywhere and are simply absent from the banned-name table.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.core import AnalysisRule, Finding, ModuleInfo
from repro.registry import register_analysis_rule

#: Wall-clock reads (qualified call targets) that leak real time into
#: simulation state.  ``time.perf_counter*`` is deliberately absent: the
#: digest-excluded timing accumulator is built on it.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module-level (global-RNG) functions of :mod:`random`.
_RANDOM_GLOBAL_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
    }
)

#: Legacy global-RNG entry points of :mod:`numpy.random`.
_NUMPY_GLOBAL_FNS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "bytes",
        "choice",
        "shuffle",
        "permutation",
        "seed",
        "normal",
        "uniform",
        "poisson",
        "exponential",
        "beta",
        "binomial",
        "standard_normal",
    }
)

#: Entropy sources that are never acceptable in digest paths.
ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandbits",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)


def _iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register_analysis_rule("wall-clock")
class WallClockRule(AnalysisRule):
    """No wall-clock reads in digest-affecting modules."""

    id = "wall-clock"
    family = "determinism"
    description = (
        "digest-affecting modules must not read wall clocks "
        "(time.time, datetime.now, ...); time.perf_counter is the "
        "blessed profiling exception"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.is_digest_module:
            return
        for call in _iter_calls(module.tree):
            qualified = module.resolve(call.func)
            if qualified in WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    call,
                    f"wall-clock read {qualified}() in a digest-affecting "
                    f"module; simulation time must come from the kernel "
                    f"clock (time.perf_counter is allowed for profiling)",
                )


@register_analysis_rule("unseeded-random")
class UnseededRandomRule(AnalysisRule):
    """No ambient entropy: every random draw must flow from a seed."""

    id = "unseeded-random"
    family = "determinism"
    description = (
        "digest-affecting modules must draw randomness from an "
        "explicitly seeded generator, never the global random/np.random "
        "state, os.urandom, uuid4 or secrets"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.is_digest_module:
            return
        for call in _iter_calls(module.tree):
            qualified = module.resolve(call.func)
            if qualified is None:
                continue
            message = self._violation(qualified, call)
            if message is not None:
                yield self.finding(module, call, message)

    @staticmethod
    def _violation(qualified: str, call: ast.Call) -> Optional[str]:
        parts = qualified.split(".")
        if qualified in ENTROPY_CALLS or parts[0] == "secrets":
            return (
                f"entropy source {qualified}() in a digest-affecting module; "
                f"results must be a pure function of the scenario seed"
            )
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] in _RANDOM_GLOBAL_FNS:
                return (
                    f"global-state RNG call {qualified}(); use a seeded "
                    f"random.Random(seed) instance owned by the caller"
                )
            if parts[1] == "Random" and not call.args and not call.keywords:
                return (
                    "random.Random() constructed without a seed; pass the "
                    "scenario seed explicitly"
                )
        if len(parts) == 3 and parts[0] == "numpy" and parts[1] == "random":
            if parts[2] in _NUMPY_GLOBAL_FNS:
                return (
                    f"global-state RNG call {qualified}(); use a seeded "
                    f"numpy.random.Generator (default_rng(seed))"
                )
            if parts[2] == "default_rng" and not call.args and not call.keywords:
                return (
                    "numpy.random.default_rng() without a seed draws from OS "
                    "entropy; pass the scenario seed explicitly"
                )
        return None


@register_analysis_rule("hash-id")
class HashIdRule(AnalysisRule):
    """builtin hash()/id() must not influence digest-affecting state."""

    id = "hash-id"
    family = "determinism"
    description = (
        "builtin hash() is randomized per process (PYTHONHASHSEED) and "
        "id() is a memory address; neither may feed digest-affecting "
        "state -- use content keys, or suppress with a reason for pure "
        "identity memos"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.is_digest_module:
            return
        for call in _iter_calls(module.tree):
            func = call.func
            if not isinstance(func, ast.Name) or func.id not in ("hash", "id"):
                continue
            if func.id in module.aliases or func.id in module.module_names:
                continue  # shadowed: not the builtin
            yield self.finding(
                module,
                call,
                f"builtin {func.id}() in a digest-affecting module: "
                + (
                    "str/bytes hashes are randomized by PYTHONHASHSEED"
                    if func.id == "hash"
                    else "id() values are memory addresses"
                )
                + "; derive keys from content (repro.utils.plancache."
                "content_key) or suppress with a reason if the value is "
                "only an identity-memo key and never ordered or serialized",
            )


_SET_CALLS = ("set", "frozenset")
#: Iteration sinks whose argument order becomes observable.
_ORDER_SENSITIVE_CALLS = frozenset(
    {"list", "tuple", "enumerate", "iter", "reversed"}
)


class _SetTracker(ast.NodeVisitor):
    """Scope-aware tracking of names bound to set-typed expressions.

    One instance walks one module.  Function scopes nest (a stack of
    local tables over the module table); ``self.<attr>`` assignments are
    pre-collected per class so methods see attributes initialised in
    ``__init__`` regardless of textual order.
    """

    def __init__(self, rule: "UnorderedIterationRule", module: ModuleInfo) -> None:
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []
        self.scopes: List[Dict[str, bool]] = [{}]
        self.class_attrs: List[Dict[str, bool]] = []

    # -- set-ness inference -------------------------------------------------------

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _SET_CALLS
                and node.func.id not in self.module.aliases
            ):
                return True
            return False
        if isinstance(node, ast.Name):
            for scope in reversed(self.scopes):
                if node.id in scope:
                    return scope[node.id]
            return False
        if isinstance(node, ast.Attribute):
            # ``self.attr`` consults the enclosing class's attribute table.
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.class_attrs
            ):
                return self.class_attrs[-1].get(node.attr, False)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    def _annotation_is_set(self, annotation: ast.AST) -> bool:
        target = annotation
        if isinstance(target, ast.Subscript):
            target = target.value
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        return name in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")

    # -- binding ------------------------------------------------------------------

    def _bind(self, target: ast.AST, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            self.scopes[-1][target.id] = is_set
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.class_attrs
        ):
            current = self.class_attrs[-1].get(target.attr, False)
            self.class_attrs[-1][target.attr] = current or is_set

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self.is_set_expr(node.value)
        for target in node.targets:
            self._bind(target, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        is_set = self._annotation_is_set(node.annotation) or (
            node.value is not None and self.is_set_expr(node.value)
        )
        self._bind(node.target, is_set)
        self.generic_visit(node)

    # -- scopes -------------------------------------------------------------------

    def _visit_function(self, node) -> None:
        self.scopes.append({})
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Pre-pass: collect every ``self.attr = <set expr>`` in the class
        # so methods see attributes initialised elsewhere (``__init__``).
        attrs: Dict[str, bool] = {}
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and self.is_set_expr(sub.value):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs[target.attr] = True
            if (
                isinstance(sub, ast.AnnAssign)
                and isinstance(sub.target, ast.Attribute)
                and isinstance(sub.target.value, ast.Name)
                and sub.target.value.id == "self"
                and self._annotation_is_set(sub.annotation)
            ):
                attrs[sub.target.attr] = True
        self.class_attrs.append(attrs)
        self.scopes.append({})
        self.generic_visit(node)
        self.scopes.pop()
        self.class_attrs.pop()

    # -- iteration sinks ----------------------------------------------------------

    def _flag(self, node: ast.AST, how: str) -> None:
        self.findings.append(
            self.rule.finding(
                self.module,
                node,
                f"iteration over a set {how} in a digest-affecting module: "
                f"set order varies with PYTHONHASHSEED and insertion "
                f"history; iterate sorted(...) or an ordered container "
                f"(repro.utils.ordered.OrderedIdSet)",
            )
        )

    def visit_For(self, node: ast.For) -> None:
        if self.is_set_expr(node.iter):
            self._flag(node.iter, "in a for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            if self.is_set_expr(generator.iter):
                self._flag(generator.iter, "in a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set FROM a set keeps membership only -- fine.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_SENSITIVE_CALLS
            and func.id not in self.module.aliases
            and node.args
            and self.is_set_expr(node.args[0])
        ):
            self._flag(node.args[0], f"via {func.id}(...)")
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
            and self.is_set_expr(node.args[0])
        ):
            self._flag(node.args[0], "via str.join(...)")
        self.generic_visit(node)

    def visit_Starred(self, node: ast.Starred) -> None:
        if self.is_set_expr(node.value):
            self._flag(node.value, "via * unpacking")
        self.generic_visit(node)


@register_analysis_rule("unordered-iteration")
class UnorderedIterationRule(AnalysisRule):
    """Set iteration order must never become observable in digest paths.

    Dicts are insertion-ordered in every supported python, so iterating
    a deterministically-built dict (or ``.values()``) is deterministic;
    ``set``/``frozenset`` iteration order is not (it varies with
    ``PYTHONHASHSEED`` for str keys and with insertion/deletion
    history), so any order-observable consumption of a set-typed
    expression is flagged.  Order-independent reductions
    (``sorted``/``min``/``max``/``sum``/``len``/``any``/``all`` and
    membership tests) are fine and not flagged.
    """

    id = "unordered-iteration"
    family = "determinism"
    description = (
        "digest-affecting modules must not iterate sets in an "
        "order-observable position (for/comprehensions/list()/join/...)"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.is_digest_module:
            return []
        tracker = _SetTracker(self, module)
        tracker.visit(module.tree)
        return tracker.findings

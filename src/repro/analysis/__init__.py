"""Static analysis for the reproduction's bit-identity contracts.

``repro.analysis`` is an AST-based lint engine with a plugin registry
of project-specific rules (determinism, observer purity, registry and
schema consistency, CLI/docs drift).  Run it as ``python -m repro lint``
or programmatically::

    from repro.analysis import run_lint

    report = run_lint(["src"])
    assert report.ok, [f.to_dict() for f in report.findings]
"""

from __future__ import annotations

from repro.analysis.core import (
    FORMATTERS,
    INTERNAL_ERROR,
    LINT_SCHEMA_VERSION,
    PARSE_ERROR,
    UNUSED_SUPPRESSION,
    AnalysisRule,
    Finding,
    LintReport,
    ModuleInfo,
    Project,
    discover_files,
    format_github,
    format_json,
    format_text,
    load_rules,
    run_lint,
)

__all__ = [
    "FORMATTERS",
    "INTERNAL_ERROR",
    "LINT_SCHEMA_VERSION",
    "PARSE_ERROR",
    "UNUSED_SUPPRESSION",
    "AnalysisRule",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "Project",
    "discover_files",
    "format_github",
    "format_json",
    "format_text",
    "load_rules",
    "run_lint",
]

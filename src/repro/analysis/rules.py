"""Seed module for the ``analysis_rules`` registry.

Importing this module registers the built-in rule set; the registry
lists it as its ``seed_module`` so the rules appear on first use, and
``repro.plugins`` entry points can add more exactly like policies or
invariants do.
"""

from __future__ import annotations

import repro.analysis.consistency  # noqa: F401  (registers consistency rules)
import repro.analysis.determinism  # noqa: F401  (registers determinism rules)
import repro.analysis.docsdrift  # noqa: F401  (registers docs-drift rules)
import repro.analysis.purity  # noqa: F401  (registers purity rules)

"""Observer purity: ``RunObserver`` callbacks must be strictly read-only.

The PR-6 contract -- observers are digest-neutral, so attaching one can
never change simulation results -- has always been enforced by
convention and by the golden-digest suite for the *shipped* observers.
This rule enforces it structurally for every observer in the tree
(including third-party plugins run through ``repro lint``): a callback
that assigns to, deletes from, or calls a mutating method on anything
reached from a callback *argument* (the kernel, a scheduler, an event,
a job record...) is an error.  Writes rooted at ``self`` are the
observer's own state and are always allowed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.core import AnalysisRule, Finding, ModuleInfo
from repro.registry import register_analysis_rule

#: Base classes whose subclasses receive simulator callbacks.
OBSERVER_BASES = ("RunObserver", "InvariantObserver")

#: Method names that mutate their receiver.  Intentionally broad: a
#: false positive on an exotically-named pure method is one suppression
#: line; a silent mutation voids bit-identical results.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "push",
        "put",
        "write",
        "writelines",
        "schedule",
        "cancel",
        "reset",
        "requeue",
        "evict",
        "preempt",
        "assign",
        "submit",
    }
)


def _root_name(node: ast.AST) -> Optional[str]:
    """The plain name a ``a.b[c].d`` access chain is rooted at."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Call):
        return _root_name(node.func)
    if isinstance(node, ast.Name):
        return node.id
    return None


def _base_matches_observer(module: ModuleInfo, base: ast.AST) -> bool:
    qualified = module.resolve(base)
    if qualified is None:
        return False
    return qualified.split(".")[-1] in OBSERVER_BASES


class _CallbackChecker(ast.NodeVisitor):
    """Walks one ``on_*`` callback, flagging writes through arguments."""

    def __init__(
        self, rule: "ObserverPurityRule", module: ModuleInfo, foreign: Set[str]
    ) -> None:
        self.rule = rule
        self.module = module
        self.foreign = set(foreign)
        self.findings: List[Finding] = []

    def _is_foreign(self, node: ast.AST) -> bool:
        root = _root_name(node)
        return root is not None and root in self.foreign

    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            self.rule.finding(
                self.module,
                node,
                f"observer callback {what} -- callbacks must be strictly "
                f"read-only on simulator state (the bit-identical-results "
                f"contract); copy what you need onto self instead",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                if self._is_foreign(target):
                    self._flag(target, "writes to a callback argument")
            elif isinstance(target, ast.Name) and self._is_foreign(node.value):
                # ``k = context.kernel`` -- the alias stays foreign.
                self.foreign.add(target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, (ast.Attribute, ast.Subscript)):
            if self._is_foreign(node.target):
                self._flag(node.target, "writes to a callback argument")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                if self._is_foreign(target):
                    self._flag(target, "deletes from a callback argument")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and self._is_foreign(func.value)
        ):
            self._flag(
                node,
                f"calls mutating method .{func.attr}() on a callback argument",
            )
        elif (
            isinstance(func, ast.Name)
            and func.id in ("setattr", "delattr")
            and node.args
            and self._is_foreign(node.args[0])
        ):
            self._flag(node, f"calls {func.id}() on a callback argument")
        self.generic_visit(node)


@register_analysis_rule("observer-purity")
class ObserverPurityRule(AnalysisRule):
    """RunObserver/InvariantObserver callbacks must not mutate arguments."""

    id = "observer-purity"
    family = "purity"
    description = (
        "RunObserver/InvariantObserver on_* callbacks must be read-only: "
        "no writes or mutating method calls through callback arguments"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        observer_classes = self._observer_classes(module)
        for class_node in observer_classes:
            for item in class_node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if not item.name.startswith("on_"):
                    continue
                params = [a.arg for a in item.args.args]
                foreign = set(params[1:])  # everything but self
                foreign.update(a.arg for a in item.args.kwonlyargs)
                if item.args.vararg:
                    foreign.add(item.args.vararg.arg)
                if item.args.kwarg:
                    foreign.add(item.args.kwarg.arg)
                checker = _CallbackChecker(self, module, foreign)
                checker.visit(item)
                for finding in checker.findings:
                    yield finding

    @staticmethod
    def _observer_classes(module: ModuleInfo) -> List[ast.ClassDef]:
        """Observer subclasses in the file, transitively within the file."""
        classes = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        ]
        by_name: Dict[str, ast.ClassDef] = {c.name: c for c in classes}
        observers: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in classes:
                if node.name in observers:
                    continue
                for base in node.bases:
                    direct = _base_matches_observer(module, base)
                    local = (
                        isinstance(base, ast.Name) and base.id in observers
                    )
                    if direct or local:
                        observers.add(node.name)
                        changed = True
                        break
        return [by_name[name] for name in sorted(observers)]

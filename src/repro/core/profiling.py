"""Bubble characterisation: the duration probe and the free-memory probe.

Before any filling happens, PipeFill's pipeline engine must learn how long
each bubble is and how much memory a fill job can use during it
(Section 4.2).  The duration probe works without clocks inside the bubble:
the engine waits an increasing amount of time at each bubble instruction
(100 ms, then doubling every iteration) and watches the main job's
throughput -- as soon as the throughput drops, the injected wait exceeded
the bubble, so the bubble's duration lies between the last harmless wait
and the first harmful one.  A short bisection refines the estimate.

The free-memory probe releases the main job's cached allocator blocks
(``empty_cache``) and reads the remaining free capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.hardware.memory import MemoryAllocator
from repro.pipeline.engine import InstrumentedPipelineEngine
from repro.pipeline.instructions import BubbleKind
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BubbleProbeResult:
    """Measured characteristics of one (stage, bubble-kind) pair."""

    stage_id: int
    bubble_kind: BubbleKind
    measured_duration: float
    probe_iterations: int
    free_memory_bytes: float


class BubbleProfiler:
    """Measures bubble durations and free memory through the pipeline engine.

    Parameters
    ----------
    engine:
        The instrumented engine replaying the main job.
    initial_wait:
        First injected wait (the paper uses 100 ms).
    slowdown_threshold:
        Relative main-job slowdown above which the injected wait is deemed
        to have exceeded the bubble.
    refine_steps:
        Bisection steps once the duration has been bracketed.
    """

    def __init__(
        self,
        engine: InstrumentedPipelineEngine,
        *,
        initial_wait: float = 0.1,
        slowdown_threshold: float = 0.005,
        refine_steps: int = 6,
        max_doublings: int = 16,
    ) -> None:
        check_positive(initial_wait, "initial_wait")
        check_positive(slowdown_threshold, "slowdown_threshold")
        self.engine = engine
        self.initial_wait = initial_wait
        self.slowdown_threshold = slowdown_threshold
        self.refine_steps = refine_steps
        self.max_doublings = max_doublings

    # -- duration probe --------------------------------------------------------

    def _slowdown_with_wait(self, stage_id: int, kind: BubbleKind, wait: float) -> float:
        return self.engine.measure_slowdown({(stage_id, kind): wait})

    def probe_duration(
        self, stage_id: int, kind: BubbleKind
    ) -> Tuple[float, int]:
        """Measure the duration of one bubble via the doubling probe.

        Returns ``(duration, iterations_used)``; the duration is 0 when even
        the initial wait already slows the main job (no bubble there).
        """
        iterations = 0
        wait = self.initial_wait
        last_good = 0.0
        first_bad: Optional[float] = None
        for _ in range(self.max_doublings):
            iterations += 1
            slowdown = self._slowdown_with_wait(stage_id, kind, wait)
            if slowdown <= self.slowdown_threshold:
                last_good = wait
                wait *= 2.0
            else:
                first_bad = wait
                break
        if first_bad is None:
            # The bubble swallowed every injected wait we tried.
            return last_good, iterations
        lo, hi = last_good, first_bad
        for _ in range(self.refine_steps):
            iterations += 1
            mid = 0.5 * (lo + hi)
            slowdown = self._slowdown_with_wait(stage_id, kind, mid)
            if slowdown <= self.slowdown_threshold:
                lo = mid
            else:
                hi = mid
        return lo, iterations

    # -- memory probe ----------------------------------------------------------

    def probe_free_memory(
        self,
        stage_id: int,
        *,
        allocator: Optional[MemoryAllocator] = None,
        main_job_pool: str = "main-job",
    ) -> float:
        """Free device memory available to fill jobs during the stage's bubbles.

        With an allocator the probe reproduces the real mechanism: release
        the main job's cached blocks, then read the remaining capacity.
        Without one it falls back to the cost model's prediction.
        """
        if allocator is None:
            return self.engine.costs.stages[stage_id].bubble_free_memory_bytes
        allocator.empty_cache(main_job_pool)
        return allocator.free_bytes

    # -- full characterisation --------------------------------------------------

    def characterize(
        self, stage_id: int, *, allocator: Optional[MemoryAllocator] = None
    ) -> Dict[BubbleKind, BubbleProbeResult]:
        """Probe both large bubbles of a stage (fill-drain and fwd-bwd)."""
        free_memory = self.probe_free_memory(stage_id, allocator=allocator)
        results: Dict[BubbleKind, BubbleProbeResult] = {}
        for kind in (BubbleKind.FILL_DRAIN, BubbleKind.FWD_BWD):
            duration, iterations = self.probe_duration(stage_id, kind)
            results[kind] = BubbleProbeResult(
                stage_id=stage_id,
                bubble_kind=kind,
                measured_duration=duration,
                probe_iterations=iterations,
                free_memory_bytes=free_memory,
            )
        return results

"""PipeFillSystem: the end-to-end facade.

Wires together the three components of Figure 3 -- the (analytic or
instrumented) pipeline engine supplying bubble cycles, one Fill Job Executor
per simulated device, and the policy-driven Fill Job Scheduler -- and runs a
fill-job trace through the event-driven cluster simulator, returning the
utilization report the paper's figures are built from.

Imports of :mod:`repro.sim` are done lazily inside methods to keep the
package import graph acyclic (``sim`` depends on ``core`` for the executor
and scheduler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, TYPE_CHECKING

from repro.core.config import PipeFillConfig, main_job_overhead_fraction
from repro.core.executor import FillJobExecutor
from repro.core.offload import plan_optimizer_offload
from repro.core.policies import SchedulingPolicy, sjf_policy
from repro.core.scheduler import FillJob
from repro.hardware.node import NodeSpec, P3_16XLARGE
from repro.models.base import ModelSpec
from repro.models.efficiency import DEFAULT_EFFICIENCY, EfficiencyModel
from repro.pipeline.bubbles import BubbleCycle
from repro.pipeline.parallelism import ParallelConfig
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.metrics import UtilizationReport
    from repro.sim.simulator import SimulationResult


@dataclass(frozen=True)
class PipeFillReport:
    """End-to-end result of running PipeFill over a fill-job trace."""

    utilization: "UtilizationReport"
    simulation: "SimulationResult"
    cluster_devices: int
    mean_relative_performance: float

    @property
    def gpus_saved(self) -> float:
        """The paper's ``C * B * P`` estimate for the full cluster."""
        from repro.sim.metrics import gpus_saved

        return gpus_saved(
            self.cluster_devices,
            self.utilization.bubble_ratio,
            self.mean_relative_performance,
        )


class PipeFillSystem:
    """A main training job plus PipeFill's executors and scheduler.

    Parameters
    ----------
    main_model:
        The pipeline-parallel LLM being trained (the main job).
    parallel:
        Its tensor/pipeline/data-parallel configuration.
    schedule:
        Pipeline schedule (``"gpipe"`` or ``"1f1b"``).
    config:
        PipeFill tunables (fill fraction, memory margin, offloading).
    node:
        Cluster node type.
    efficiency:
        Shared efficiency model.
    policy:
        Fill-job scheduling policy.
    devices_per_stage:
        Representative devices simulated per pipeline stage.
    bubble_free_memory_bytes:
        Override of the free memory available in bubbles (the paper uses its
        measured 4.5 GB for simulator studies and sweeps it in Figure 10b).
    use_engine:
        When true, derive bubble cycles from the instrumented pipeline
        engine (realistic stage imbalance); otherwise use the analytic
        uniform-stage main-job model, as the paper's simulator does.
    """

    def __init__(
        self,
        main_model: ModelSpec,
        parallel: ParallelConfig,
        *,
        schedule: str = "gpipe",
        config: Optional[PipeFillConfig] = None,
        node: NodeSpec = P3_16XLARGE,
        efficiency: EfficiencyModel = DEFAULT_EFFICIENCY,
        policy: SchedulingPolicy = sjf_policy,
        devices_per_stage: int = 1,
        bubble_free_memory_bytes: Optional[float] = None,
        use_engine: bool = False,
    ) -> None:
        check_positive(devices_per_stage, "devices_per_stage")
        self.main_model = main_model
        self.parallel = parallel
        self.schedule = schedule
        self.config = config or PipeFillConfig()
        self.node = node
        self.efficiency = efficiency
        self.policy = policy
        self.devices_per_stage = devices_per_stage
        self.use_engine = use_engine

        self.main_job = self._build_main_job(bubble_free_memory_bytes)
        self._cycles = self._build_cycles()
        self.executors = self._build_executors()

    # -- construction ------------------------------------------------------------

    def _build_main_job(self, bubble_free_memory_bytes: Optional[float]):
        from repro.sim.mainjob import AnalyticMainJob

        return AnalyticMainJob(
            model=self.main_model,
            parallel=self.parallel,
            schedule=self.schedule,
            node=self.node,
            efficiency=self.efficiency,
            bubble_free_memory_bytes=bubble_free_memory_bytes,
        )

    def _build_cycles(self) -> Dict[int, BubbleCycle]:
        if self.use_engine:
            from repro.pipeline.costs import main_job_costs
            from repro.pipeline.engine import InstrumentedPipelineEngine

            costs = main_job_costs(
                self.main_model, self.parallel, node=self.node, efficiency=self.efficiency
            )
            engine = InstrumentedPipelineEngine(costs, self.schedule)
            cycles = {c.stage_id: c for c in engine.bubble_cycles()}
        else:
            cycles = {c.stage_id: c for c in self.main_job.bubble_cycles()}

        if self.config.offload_main_job:
            cycles = {
                stage: cycle.with_free_memory(
                    cycle.min_free_memory_bytes + self._offload_gain(stage)
                )
                for stage, cycle in cycles.items()
            }
        return cycles

    def _offload_gain(self, stage_id: int) -> float:
        from repro.pipeline.costs import main_job_costs

        costs = main_job_costs(
            self.main_model, self.parallel, node=self.node, efficiency=self.efficiency
        )
        plan = plan_optimizer_offload(costs.stages[stage_id], self.parallel, node=self.node)
        return plan.extra_free_memory_bytes

    def _build_executors(self) -> Dict[int, FillJobExecutor]:
        executors: Dict[int, FillJobExecutor] = {}
        index = 0
        for stage_id in range(self.parallel.pipeline_stages):
            cycle = self._cycles[stage_id]
            for _ in range(self.devices_per_stage):
                executors[index] = FillJobExecutor(
                    cycle,
                    device=self.node.device_spec,
                    config=self.config,
                    efficiency=self.efficiency,
                )
                index += 1
        return executors

    # -- introspection --------------------------------------------------------------

    @property
    def num_simulated_devices(self) -> int:
        """Number of representative devices the simulator will run."""
        return len(self.executors)

    @property
    def cluster_devices(self) -> int:
        """Number of accelerators in the full cluster."""
        return self.parallel.num_devices

    def bubble_cycle(self, stage_id: int) -> BubbleCycle:
        """The (possibly offload-augmented) bubble cycle of a stage."""
        return self._cycles[stage_id]

    # -- running -----------------------------------------------------------------------

    def run(
        self,
        jobs: Iterable[FillJob],
        *,
        horizon_seconds: Optional[float] = None,
    ) -> PipeFillReport:
        """Run a fill-job trace through the scheduler and simulator."""
        from repro.sim.metrics import UtilizationReport
        from repro.sim.simulator import ClusterSimulator

        simulator = ClusterSimulator(self.executors, policy=self.policy)
        result = simulator.run(jobs, horizon_seconds=horizon_seconds)

        overhead = main_job_overhead_fraction(self.config.fill_fraction)
        main_tflops = self.main_job.tflops_per_device / (1.0 + overhead)
        utilization = UtilizationReport(
            num_devices=result.num_devices,
            horizon_seconds=result.horizon_seconds,
            main_tflops_per_device=main_tflops,
            fill_tflops_per_device=result.fill_tflops_per_device,
            bubble_ratio=min(1.0, self.main_job.bubble_ratio * (1.0 + overhead)),
            main_job_slowdown=overhead,
            fill_metrics=result.fill_metrics,
        )
        return PipeFillReport(
            utilization=utilization,
            simulation=result,
            cluster_devices=self.cluster_devices,
            mean_relative_performance=self._mean_relative_performance(result),
        )

    def _mean_relative_performance(self, result: "SimulationResult") -> float:
        """Average fill-job relative performance ``P`` over executed jobs."""
        scheduler = result.scheduler
        values = []
        for record in scheduler.completed_records():
            assert record.assigned_executor is not None
            estimate = scheduler.estimate_for(record.job, record.assigned_executor)
            if estimate is not None:
                values.append(estimate.relative_performance)
        if not values:
            return 0.0
        return float(sum(values) / len(values))

"""Fill Job Execution Plan Algorithm (Algorithm 1 of the paper).

Given the repeating cycle of pipeline bubbles on a device (durations ``B``
and free-memory capacities ``M``) and a fill job's linearised computational
graph ``F`` (per-node durations and memory requirements), the planner

1. replicates the graph as many times as fit in one cycle's total bubble
   time (each replica is one training/inference iteration of the fill job),
   and
2. greedily packs the resulting node sequence into consecutive bubbles,
   never exceeding a bubble's usable duration or free memory, wrapping
   around the cycle as needed.

The output is an :class:`ExecutionPlan`: the list of
:class:`GraphPartition` objects (one per bubble visit) the executor will
run, plus the derived throughput/packing metrics used by the executor and
the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PipeFillConfig
from repro.models.base import ComputationalGraph, GraphNode
from repro.pipeline.bubbles import Bubble, BubbleCycle


class PlanError(ValueError):
    """Raised when a fill job cannot be planned onto a bubble cycle.

    Typical causes: a graph node needs more memory than any bubble offers,
    or a node's duration exceeds every bubble's usable duration.
    """


@dataclass(frozen=True)
class GraphPartition:
    """The chunk of the fill job's graph assigned to one bubble visit."""

    bubble_index: int
    cycle_index: int
    nodes: Tuple[GraphNode, ...]

    @property
    def duration(self) -> float:
        """Planned execution time of the partition (sum of node durations)."""
        return sum(node.duration for node in self.nodes)

    @property
    def memory_bytes(self) -> float:
        """Peak memory requirement of the partition."""
        return max((node.memory_bytes for node in self.nodes), default=0.0)

    @property
    def flops(self) -> float:
        """FLOPs executed by the partition."""
        return sum(node.flops for node in self.nodes)

    @property
    def is_empty(self) -> bool:
        """True when the bubble visit carries no work (skipped bubble)."""
        return not self.nodes


@dataclass(frozen=True)
class ExecutionPlan:
    """Result of Algorithm 1 for one fill-job iteration bundle.

    Attributes
    ----------
    partitions:
        Graph partitions in execution order; ``partitions[i]`` runs in
        bubble ``i mod len(bubbles)`` of cycle ``i // len(bubbles)``.
    bubbles:
        The fillable bubbles of the cycle the plan was built against.
    iterations:
        Number of fill-job iterations replicated into the plan (Algorithm 1
        lines 3-7).
    graph_duration:
        Exclusive-execution duration of a single fill-job iteration.
    cycle_period:
        The main job's iteration period (the cycle repeats with this period).
    """

    partitions: Tuple[GraphPartition, ...]
    bubbles: Tuple[Bubble, ...]
    iterations: int
    graph_duration: float
    cycle_period: float

    @property
    def num_cycles(self) -> int:
        """Number of bubble cycles (main-job iterations) the plan spans."""
        if not self.partitions:
            return 0
        return self.partitions[-1].cycle_index + 1

    @property
    def planned_work_seconds(self) -> float:
        """Total packed node time across the plan."""
        return sum(p.duration for p in self.partitions)

    @property
    def planned_flops(self) -> float:
        """Total FLOPs packed into the plan."""
        return sum(p.flops for p in self.partitions)

    @property
    def used_bubble_seconds(self) -> float:
        """Bubble time the plan occupies (non-empty bubble visits count fully used portions)."""
        return self.planned_work_seconds

    @property
    def wall_clock_seconds(self) -> float:
        """Wall-clock time from the first bubble to the last partition's bubble."""
        return self.num_cycles * self.cycle_period

    @property
    def packing_efficiency(self) -> float:
        """Fraction of the spanned cycles' fillable bubble time actually packed."""
        available = self.num_cycles * sum(b.duration for b in self.bubbles)
        if available <= 0:
            return 0.0
        return self.planned_work_seconds / available

    def partitions_in_cycle(self, cycle_index: int) -> List[GraphPartition]:
        """Partitions executed during one bubble cycle."""
        return [p for p in self.partitions if p.cycle_index == cycle_index]


def _replication_count(
    graph_duration: float, total_usable_bubble: float
) -> int:
    """Algorithm 1 lines 3-7: how many iterations to bundle into one plan.

    The graph is replicated while the total duration plus one more replica
    still fits under the cycle's total bubble time, i.e. the largest ``k``
    with ``k * dur(F) < sum(B)`` (and at least one replica).
    """
    if graph_duration <= 0:
        raise PlanError("fill-job graph has zero duration")
    # Jump straight below the fixpoint, then settle with the exact loop
    # condition: any start ``s >= 1`` with ``s * dur < sum(B)`` reaches the
    # same count as starting from 1, and the jump keeps this O(1) even when
    # thousands of replicas fit.
    count = max(1, int(total_usable_bubble / graph_duration) - 2)
    if count * graph_duration >= total_usable_bubble:
        count = 1
    while (count + 1) * graph_duration < total_usable_bubble:
        count += 1
    return count


def plan_fill_job(
    graph: ComputationalGraph,
    cycle: BubbleCycle,
    config: Optional[PipeFillConfig] = None,
    *,
    max_cycles: int = 10_000,
) -> ExecutionPlan:
    """Run Algorithm 1: pack ``graph`` onto the bubble cycle of a device.

    Parameters
    ----------
    graph:
        The fill job's linearised computational graph under a specific
        execution configuration (from :func:`repro.models.profiles.profile_model`).
    cycle:
        The device's repeating bubble cycle.
    config:
        PipeFill tunables (fill fraction, memory safety margin, ...).
    max_cycles:
        Safety bound on the number of bubble cycles a single plan may span.

    Raises
    ------
    PlanError
        If some node can never be placed (too large for every bubble's
        usable duration or memory), or the cycle has no fillable bubbles.
    """
    config = config or PipeFillConfig()
    bubbles = tuple(
        b
        for b in cycle.fillable_bubbles
        if config.usable_bubble_seconds(b.duration) > 0.0
    )
    if not bubbles:
        raise PlanError(
            f"bubble cycle of stage {cycle.stage_id} has no fillable bubbles "
            f"longer than {config.min_fill_bubble_seconds}s"
        )

    usable_durations = [config.usable_bubble_seconds(b.duration) for b in bubbles]
    usable_memory = [config.usable_bubble_memory(b.free_memory_bytes) for b in bubbles]
    total_usable = sum(usable_durations)

    # Feasibility: every node must fit in at least one bubble.
    for node in graph.nodes:
        fits = any(
            node.duration <= usable_durations[i] and node.memory_bytes <= usable_memory[i]
            for i in range(len(bubbles))
        )
        if not fits:
            raise PlanError(
                f"graph node {node.name!r} (duration {node.duration:.4f}s, "
                f"memory {node.memory_bytes:.3e} B) does not fit in any bubble of "
                f"stage {cycle.stage_id}'s cycle"
            )

    iterations = _replication_count(graph.total_duration, total_usable)
    replicated = ComputationalGraph.concatenate([graph] * iterations)

    partitions: List[GraphPartition] = []
    nodes = replicated.nodes
    num_nodes = len(nodes)
    next_node = 0  # index of the first not-yet-packed node
    bubble_idx = 0
    empty_streak = 0
    while next_node < num_nodes:
        cycle_index = bubble_idx // len(bubbles)
        if cycle_index >= max_cycles:
            raise PlanError(
                f"plan exceeded {max_cycles} bubble cycles; the fill job is too "
                "large for this bubble cycle"
            )
        i = bubble_idx % len(bubbles)
        capacity = usable_durations[i]
        mem_cap = usable_memory[i]
        start = next_node
        packed_duration = 0.0
        while (
            next_node < num_nodes
            and packed_duration + nodes[next_node].duration <= capacity
            and nodes[next_node].memory_bytes <= mem_cap
        ):
            packed_duration += nodes[next_node].duration
            next_node += 1
        partition = GraphPartition(
            bubble_index=i, cycle_index=cycle_index, nodes=nodes[start:next_node]
        )
        partitions.append(partition)
        if partition.is_empty:
            empty_streak += 1
            if empty_streak >= len(bubbles):
                # A full cycle went by without placing anything; the
                # feasibility pre-check should make this unreachable, but
                # guard against pathological inputs anyway.
                raise PlanError(
                    "no progress packing the fill job; a node does not fit any bubble"
                )
        else:
            empty_streak = 0
        bubble_idx += 1

    return ExecutionPlan(
        partitions=tuple(partitions),
        bubbles=bubbles,
        iterations=iterations,
        graph_duration=graph.total_duration,
        cycle_period=cycle.period,
    )


# -- vectorized fast path -----------------------------------------------------------
#
# plan_fill_job above is the reference implementation: it materializes the
# replicated graph (every node cloned and renamed per iteration) and packs it
# node by node.  For large plans that materialization dominates the cold-start
# cost of a simulation -- hundreds of thousands of GraphNode clones whose only
# purpose is to be summed into per-bubble durations.  pack_fill_job below runs
# the *same* Algorithm-1 loop over flat numpy duration/memory arrays instead:
#
# * The per-bubble inner loop becomes a windowed ``np.cumsum`` + first-violation
#   scan.  ``np.cumsum`` accumulates strictly left-to-right, so ``c[j]`` is
#   bit-for-bit the scalar loop's ``packed_duration + nodes[j].duration`` at
#   step ``j`` (the scalar loop resets its accumulator to 0.0 per bubble visit,
#   and so does each window), and the packed partition duration ``c[L-1]``
#   equals ``GraphPartition.duration``'s fresh ``sum()`` over the same nodes.
# * Nodes are never cloned: the result is a :class:`PackedPlan` that records
#   only per-visit (node count, packed duration) and materializes real
#   ``GraphPartition`` tuples -- with the exact ``iter{i}/{name}`` clone names
#   ``ComputationalGraph.concatenate`` would have produced -- on first access.
#
# ``use_cache=False`` simulations keep calling plan_fill_job, so the
# brute-force differential oracles and the golden-digest suite prove the two
# paths bit-identical end-to-end.


class PackedPlan:
    """An :class:`ExecutionPlan` computed without materializing its nodes.

    Duck-types the plan API consumed by the executor and the tests
    (``partitions``, ``bubbles``, ``num_cycles``, the derived metrics);
    ``partitions`` builds the real :class:`GraphPartition` tuple lazily on
    first access, so estimate construction never pays for node clones it
    does not read.  Picklable (the persistent plan cache stores estimates);
    the materialized partitions are dropped from the pickle.
    """

    __slots__ = (
        "bubbles",
        "iterations",
        "graph_duration",
        "cycle_period",
        "_graph",
        "_visit_counts",
        "_visit_durations",
        "_partitions",
    )

    def __init__(
        self,
        *,
        graph: ComputationalGraph,
        bubbles: Tuple[Bubble, ...],
        iterations: int,
        cycle_period: float,
        visit_counts: np.ndarray,
        visit_durations: np.ndarray,
    ) -> None:
        self.bubbles = bubbles
        self.iterations = iterations
        self.graph_duration = graph.total_duration
        self.cycle_period = cycle_period
        self._graph = graph
        self._visit_counts = visit_counts
        self._visit_durations = visit_durations
        self._partitions: Optional[Tuple[GraphPartition, ...]] = None

    # -- lazy materialization --------------------------------------------------

    @property
    def partitions(self) -> Tuple[GraphPartition, ...]:
        """The real partition tuple (built on first access)."""
        if self._partitions is None:
            base = self._graph.nodes
            n = len(base)
            num_bubbles = len(self.bubbles)
            parts: List[GraphPartition] = []
            node_idx = 0
            for k, count in enumerate(self._visit_counts.tolist()):
                nodes = []
                for _ in range(count):
                    iteration, j = divmod(node_idx, n)
                    node = base[j]
                    nodes.append(node.renamed(f"iter{iteration}/{node.name}"))
                    node_idx += 1
                parts.append(
                    GraphPartition(
                        bubble_index=k % num_bubbles,
                        cycle_index=k // num_bubbles,
                        nodes=tuple(nodes),
                    )
                )
            self._partitions = tuple(parts)
        return self._partitions

    def nonempty_visits(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(bubble_index, packed_duration)`` per non-empty visit.

        The packed duration is bit-identical to the corresponding
        ``GraphPartition.duration`` (same left-to-right float additions),
        which is what lets the executor consume the plan without
        materializing it.
        """
        num_bubbles = len(self.bubbles)
        counts = self._visit_counts
        for k, duration in enumerate(self._visit_durations.tolist()):
            if counts[k]:
                yield k % num_bubbles, duration

    # -- the ExecutionPlan metric API -------------------------------------------

    @property
    def num_cycles(self) -> int:
        if not len(self._visit_counts):
            return 0
        return (len(self._visit_counts) - 1) // len(self.bubbles) + 1

    @property
    def planned_work_seconds(self) -> float:
        # tolist() yields Python floats; the sequential sum reproduces
        # ExecutionPlan.planned_work_seconds' addition order exactly.
        return sum(self._visit_durations.tolist())

    @property
    def planned_flops(self) -> float:
        return sum(p.flops for p in self.partitions)

    @property
    def used_bubble_seconds(self) -> float:
        return self.planned_work_seconds

    @property
    def wall_clock_seconds(self) -> float:
        return self.num_cycles * self.cycle_period

    @property
    def packing_efficiency(self) -> float:
        available = self.num_cycles * sum(b.duration for b in self.bubbles)
        if available <= 0:
            return 0.0
        return self.planned_work_seconds / available

    def partitions_in_cycle(self, cycle_index: int) -> List[GraphPartition]:
        return [p for p in self.partitions if p.cycle_index == cycle_index]

    # -- pickling (the persistent plan cache stores estimates) -------------------

    def __getstate__(self):
        return {
            "bubbles": self.bubbles,
            "iterations": self.iterations,
            "cycle_period": self.cycle_period,
            "graph": self._graph,
            "visit_counts": self._visit_counts,
            "visit_durations": self._visit_durations,
        }

    def __setstate__(self, state) -> None:
        self.bubbles = state["bubbles"]
        self.iterations = state["iterations"]
        self.cycle_period = state["cycle_period"]
        self._graph = state["graph"]
        self.graph_duration = self._graph.total_duration
        self._visit_counts = state["visit_counts"]
        self._visit_durations = state["visit_durations"]
        self._partitions = None


def _pack_visit_lengths(
    durations: np.ndarray,
    memories: np.ndarray,
    usable_durations: Sequence[float],
    usable_memory: Sequence[float],
    *,
    max_cycles: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """The Algorithm-1 packing loop over flat arrays.

    Returns per-bubble-visit ``(node counts, packed durations)``; raises the
    same :class:`PlanError`\\ s (same messages, same trigger conditions) as
    the scalar loop in :func:`plan_fill_job`.
    """
    num_nodes = len(durations)
    num_bubbles = len(usable_durations)
    visit_counts: List[int] = []
    visit_durations: List[float] = []
    next_node = 0
    bubble_idx = 0
    empty_streak = 0
    window = 32
    while next_node < num_nodes:
        cycle_index = bubble_idx // num_bubbles
        if cycle_index >= max_cycles:
            raise PlanError(
                f"plan exceeded {max_cycles} bubble cycles; the fill job is too "
                "large for this bubble cycle"
            )
        i = bubble_idx % num_bubbles
        capacity = usable_durations[i]
        mem_cap = usable_memory[i]
        # Widen the window until it contains the first violation (or the end
        # of the node sequence); the cumsum restarts at 0.0 per visit exactly
        # like the scalar loop's packed_duration accumulator.
        length = 0
        packed = 0.0
        w = window
        while True:
            end = min(next_node + w, num_nodes)
            c = np.cumsum(durations[next_node:end])
            viol = c > capacity
            viol |= memories[next_node:end] > mem_cap
            hit = int(viol.argmax())
            if viol[hit]:
                length = hit
            elif end < num_nodes:
                w *= 2
                continue
            else:
                length = end - next_node
            if length:
                packed = float(c[length - 1])
            break
        window = max(16, 2 * length)
        visit_counts.append(length)
        visit_durations.append(packed)
        next_node += length
        if length == 0:
            empty_streak += 1
            if empty_streak >= num_bubbles:
                raise PlanError(
                    "no progress packing the fill job; a node does not fit any bubble"
                )
        else:
            empty_streak = 0
        bubble_idx += 1
    return (
        np.asarray(visit_counts, dtype=np.int64),
        np.asarray(visit_durations, dtype=np.float64),
    )


def pack_fill_job(
    graph: ComputationalGraph,
    cycle: BubbleCycle,
    config: Optional[PipeFillConfig] = None,
    *,
    max_cycles: int = 10_000,
) -> PackedPlan:
    """Vectorized :func:`plan_fill_job`: same plan, nodes materialized lazily.

    Raises exactly the :class:`PlanError`\\ s the scalar path raises, with
    the same messages, so the two are interchangeable to callers.
    """
    config = config or PipeFillConfig()
    bubbles = tuple(
        b
        for b in cycle.fillable_bubbles
        if config.usable_bubble_seconds(b.duration) > 0.0
    )
    if not bubbles:
        raise PlanError(
            f"bubble cycle of stage {cycle.stage_id} has no fillable bubbles "
            f"longer than {config.min_fill_bubble_seconds}s"
        )

    usable_durations = [config.usable_bubble_seconds(b.duration) for b in bubbles]
    usable_memory = [config.usable_bubble_memory(b.free_memory_bytes) for b in bubbles]
    total_usable = sum(usable_durations)

    base_durations = np.array([n.duration for n in graph.nodes], dtype=np.float64)
    base_memories = np.array([n.memory_bytes for n in graph.nodes], dtype=np.float64)

    # Feasibility: every node must fit in at least one bubble (first offender
    # reported, like the scalar pre-check).
    fits_any = (
        (base_durations[:, None] <= np.asarray(usable_durations)[None, :])
        & (base_memories[:, None] <= np.asarray(usable_memory)[None, :])
    ).any(axis=1)
    if not fits_any.all():
        node = graph.nodes[int(np.argmin(fits_any))]
        raise PlanError(
            f"graph node {node.name!r} (duration {node.duration:.4f}s, "
            f"memory {node.memory_bytes:.3e} B) does not fit in any bubble of "
            f"stage {cycle.stage_id}'s cycle"
        )

    iterations = _replication_count(graph.total_duration, total_usable)
    durations = np.tile(base_durations, iterations)
    memories = np.tile(base_memories, iterations)
    visit_counts, visit_durations = _pack_visit_lengths(
        durations,
        memories,
        usable_durations,
        usable_memory,
        max_cycles=max_cycles,
    )
    return PackedPlan(
        graph=graph,
        bubbles=bubbles,
        iterations=iterations,
        cycle_period=cycle.period,
        visit_counts=visit_counts,
        visit_durations=visit_durations,
    )

"""Fill Job Execution Plan Algorithm (Algorithm 1 of the paper).

Given the repeating cycle of pipeline bubbles on a device (durations ``B``
and free-memory capacities ``M``) and a fill job's linearised computational
graph ``F`` (per-node durations and memory requirements), the planner

1. replicates the graph as many times as fit in one cycle's total bubble
   time (each replica is one training/inference iteration of the fill job),
   and
2. greedily packs the resulting node sequence into consecutive bubbles,
   never exceeding a bubble's usable duration or free memory, wrapping
   around the cycle as needed.

The output is an :class:`ExecutionPlan`: the list of
:class:`GraphPartition` objects (one per bubble visit) the executor will
run, plus the derived throughput/packing metrics used by the executor and
the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import PipeFillConfig
from repro.models.base import ComputationalGraph, GraphNode
from repro.pipeline.bubbles import Bubble, BubbleCycle


class PlanError(ValueError):
    """Raised when a fill job cannot be planned onto a bubble cycle.

    Typical causes: a graph node needs more memory than any bubble offers,
    or a node's duration exceeds every bubble's usable duration.
    """


@dataclass(frozen=True)
class GraphPartition:
    """The chunk of the fill job's graph assigned to one bubble visit."""

    bubble_index: int
    cycle_index: int
    nodes: Tuple[GraphNode, ...]

    @property
    def duration(self) -> float:
        """Planned execution time of the partition (sum of node durations)."""
        return sum(node.duration for node in self.nodes)

    @property
    def memory_bytes(self) -> float:
        """Peak memory requirement of the partition."""
        return max((node.memory_bytes for node in self.nodes), default=0.0)

    @property
    def flops(self) -> float:
        """FLOPs executed by the partition."""
        return sum(node.flops for node in self.nodes)

    @property
    def is_empty(self) -> bool:
        """True when the bubble visit carries no work (skipped bubble)."""
        return not self.nodes


@dataclass(frozen=True)
class ExecutionPlan:
    """Result of Algorithm 1 for one fill-job iteration bundle.

    Attributes
    ----------
    partitions:
        Graph partitions in execution order; ``partitions[i]`` runs in
        bubble ``i mod len(bubbles)`` of cycle ``i // len(bubbles)``.
    bubbles:
        The fillable bubbles of the cycle the plan was built against.
    iterations:
        Number of fill-job iterations replicated into the plan (Algorithm 1
        lines 3-7).
    graph_duration:
        Exclusive-execution duration of a single fill-job iteration.
    cycle_period:
        The main job's iteration period (the cycle repeats with this period).
    """

    partitions: Tuple[GraphPartition, ...]
    bubbles: Tuple[Bubble, ...]
    iterations: int
    graph_duration: float
    cycle_period: float

    @property
    def num_cycles(self) -> int:
        """Number of bubble cycles (main-job iterations) the plan spans."""
        if not self.partitions:
            return 0
        return self.partitions[-1].cycle_index + 1

    @property
    def planned_work_seconds(self) -> float:
        """Total packed node time across the plan."""
        return sum(p.duration for p in self.partitions)

    @property
    def planned_flops(self) -> float:
        """Total FLOPs packed into the plan."""
        return sum(p.flops for p in self.partitions)

    @property
    def used_bubble_seconds(self) -> float:
        """Bubble time the plan occupies (non-empty bubble visits count fully used portions)."""
        return self.planned_work_seconds

    @property
    def wall_clock_seconds(self) -> float:
        """Wall-clock time from the first bubble to the last partition's bubble."""
        return self.num_cycles * self.cycle_period

    @property
    def packing_efficiency(self) -> float:
        """Fraction of the spanned cycles' fillable bubble time actually packed."""
        available = self.num_cycles * sum(b.duration for b in self.bubbles)
        if available <= 0:
            return 0.0
        return self.planned_work_seconds / available

    def partitions_in_cycle(self, cycle_index: int) -> List[GraphPartition]:
        """Partitions executed during one bubble cycle."""
        return [p for p in self.partitions if p.cycle_index == cycle_index]


def _replication_count(
    graph_duration: float, total_usable_bubble: float
) -> int:
    """Algorithm 1 lines 3-7: how many iterations to bundle into one plan.

    The graph is replicated while the total duration plus one more replica
    still fits under the cycle's total bubble time, i.e. the largest ``k``
    with ``k * dur(F) < sum(B)`` (and at least one replica).
    """
    if graph_duration <= 0:
        raise PlanError("fill-job graph has zero duration")
    # Jump straight below the fixpoint, then settle with the exact loop
    # condition: any start ``s >= 1`` with ``s * dur < sum(B)`` reaches the
    # same count as starting from 1, and the jump keeps this O(1) even when
    # thousands of replicas fit.
    count = max(1, int(total_usable_bubble / graph_duration) - 2)
    if count * graph_duration >= total_usable_bubble:
        count = 1
    while (count + 1) * graph_duration < total_usable_bubble:
        count += 1
    return count


def plan_fill_job(
    graph: ComputationalGraph,
    cycle: BubbleCycle,
    config: Optional[PipeFillConfig] = None,
    *,
    max_cycles: int = 10_000,
) -> ExecutionPlan:
    """Run Algorithm 1: pack ``graph`` onto the bubble cycle of a device.

    Parameters
    ----------
    graph:
        The fill job's linearised computational graph under a specific
        execution configuration (from :func:`repro.models.profiles.profile_model`).
    cycle:
        The device's repeating bubble cycle.
    config:
        PipeFill tunables (fill fraction, memory safety margin, ...).
    max_cycles:
        Safety bound on the number of bubble cycles a single plan may span.

    Raises
    ------
    PlanError
        If some node can never be placed (too large for every bubble's
        usable duration or memory), or the cycle has no fillable bubbles.
    """
    config = config or PipeFillConfig()
    bubbles = tuple(
        b
        for b in cycle.fillable_bubbles
        if config.usable_bubble_seconds(b.duration) > 0.0
    )
    if not bubbles:
        raise PlanError(
            f"bubble cycle of stage {cycle.stage_id} has no fillable bubbles "
            f"longer than {config.min_fill_bubble_seconds}s"
        )

    usable_durations = [config.usable_bubble_seconds(b.duration) for b in bubbles]
    usable_memory = [config.usable_bubble_memory(b.free_memory_bytes) for b in bubbles]
    total_usable = sum(usable_durations)

    # Feasibility: every node must fit in at least one bubble.
    for node in graph.nodes:
        fits = any(
            node.duration <= usable_durations[i] and node.memory_bytes <= usable_memory[i]
            for i in range(len(bubbles))
        )
        if not fits:
            raise PlanError(
                f"graph node {node.name!r} (duration {node.duration:.4f}s, "
                f"memory {node.memory_bytes:.3e} B) does not fit in any bubble of "
                f"stage {cycle.stage_id}'s cycle"
            )

    iterations = _replication_count(graph.total_duration, total_usable)
    replicated = ComputationalGraph.concatenate([graph] * iterations)

    partitions: List[GraphPartition] = []
    nodes = replicated.nodes
    num_nodes = len(nodes)
    next_node = 0  # index of the first not-yet-packed node
    bubble_idx = 0
    empty_streak = 0
    while next_node < num_nodes:
        cycle_index = bubble_idx // len(bubbles)
        if cycle_index >= max_cycles:
            raise PlanError(
                f"plan exceeded {max_cycles} bubble cycles; the fill job is too "
                "large for this bubble cycle"
            )
        i = bubble_idx % len(bubbles)
        capacity = usable_durations[i]
        mem_cap = usable_memory[i]
        start = next_node
        packed_duration = 0.0
        while (
            next_node < num_nodes
            and packed_duration + nodes[next_node].duration <= capacity
            and nodes[next_node].memory_bytes <= mem_cap
        ):
            packed_duration += nodes[next_node].duration
            next_node += 1
        partition = GraphPartition(
            bubble_index=i, cycle_index=cycle_index, nodes=nodes[start:next_node]
        )
        partitions.append(partition)
        if partition.is_empty:
            empty_streak += 1
            if empty_streak >= len(bubbles):
                # A full cycle went by without placing anything; the
                # feasibility pre-check should make this unreachable, but
                # guard against pathological inputs anyway.
                raise PlanError(
                    "no progress packing the fill job; a node does not fit any bubble"
                )
        else:
            empty_streak = 0
        bubble_idx += 1

    return ExecutionPlan(
        partitions=tuple(partitions),
        bubbles=bubbles,
        iterations=iterations,
        graph_duration=graph.total_duration,
        cycle_period=cycle.period,
    )

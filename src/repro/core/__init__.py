"""PipeFill core: bubble-filling planner, executor, offloader and scheduler.

This package is the paper's primary contribution:

* :mod:`repro.core.config` -- system-wide PipeFill tunables (fill fraction,
  memory safety margin, context-switch costs).
* :mod:`repro.core.plan` -- the Fill Job Execution Plan Algorithm
  (Algorithm 1): replicate and greedily pack a fill job's linearised
  computational graph into the repeating cycle of pipeline bubbles.
* :mod:`repro.core.executor` -- the per-device Fill Job Executor: selects an
  execution configuration, builds the plan, enforces the memory cap, and
  estimates achieved throughput / recovered FLOPs.
* :mod:`repro.core.offload` -- main-job optimizer-state offloading to grow
  the free memory available in bubbles.
* :mod:`repro.core.profiling` -- bubble characterisation: the doubling
  probe for bubble durations and the free-memory probe.
* :mod:`repro.core.policies` / :mod:`repro.core.scheduler` -- the fill-job
  scheduler with user-defined scoring policies and preemption rules.
* :mod:`repro.core.global_scheduler` -- the cross-tenant routing layer: one
  shared fill-job backlog feeding many main jobs' schedulers.
* :mod:`repro.core.system` -- the PipeFillSystem facade wiring a main job,
  executors and the scheduler together.
"""

from repro.core.config import PipeFillConfig, main_job_overhead_fraction
from repro.core.plan import (
    PlanError,
    GraphPartition,
    ExecutionPlan,
    plan_fill_job,
)
from repro.core.executor import FillJobExecutor, FillExecutionEstimate
from repro.core.offload import OffloadPlan, plan_optimizer_offload
from repro.core.profiling import BubbleProfiler, BubbleProbeResult
from repro.core.policies import (
    SchedulingPolicy,
    PreemptionRule,
    RunningJobView,
    fifo_policy,
    sjf_policy,
    makespan_policy,
    edf_policy,
    slack_policy,
    deadline_preemption_rule,
    compose_policies,
    POLICIES,
    PREEMPTION_RULES,
    get_policy,
    get_preemption_rule,
)
from repro.core.scheduler import (
    FillJob,
    FillJobState,
    ExecutorState,
    FillJobScheduler,
)
from repro.core.global_scheduler import Assignment, GlobalScheduler
from repro.core.system import PipeFillSystem, PipeFillReport

__all__ = [
    "PipeFillConfig",
    "main_job_overhead_fraction",
    "PlanError",
    "GraphPartition",
    "ExecutionPlan",
    "plan_fill_job",
    "FillJobExecutor",
    "FillExecutionEstimate",
    "OffloadPlan",
    "plan_optimizer_offload",
    "BubbleProfiler",
    "BubbleProbeResult",
    "SchedulingPolicy",
    "PreemptionRule",
    "RunningJobView",
    "fifo_policy",
    "sjf_policy",
    "makespan_policy",
    "edf_policy",
    "slack_policy",
    "deadline_preemption_rule",
    "compose_policies",
    "POLICIES",
    "PREEMPTION_RULES",
    "get_policy",
    "get_preemption_rule",
    "FillJob",
    "FillJobState",
    "ExecutorState",
    "FillJobScheduler",
    "Assignment",
    "GlobalScheduler",
    "PipeFillSystem",
    "PipeFillReport",
]

"""Incremental candidate indexes for the dispatch hot path.

Before this module, every simulated event triggered a *dispatch sweep*:
each idle executor re-scored every waiting job with the scheduling policy,
making per-event cost ``O(idle executors x waiting jobs)``.  The
:class:`CandidateIndex` replaces that sweep with incremental state that is
maintained as jobs enter and leave a queue:

* **Job classes.**  Two fill jobs with the same ``(model_name, job_type)``
  behave identically on a given executor up to their sample count: they
  share one :class:`~repro.core.executor.FillExecutionEstimate` per
  executor, hence the same feasibility and the same seconds-per-sample.
  The owning scheduler memoises one *class table* per class -- the
  ``(samples_per_cycle, cycle_period)`` pair per executor plus the set of
  feasible executors -- so per-job state collapses to a sample count.

* **Per-executor feasibility sets.**  Each executor knows which classes it
  can run; an idle executor whose feasible classes hold no waiting
  candidate is skipped in O(1) instead of scanning the whole backlog.

* **Structure-of-arrays candidate columns.**  Each class keeps its
  waiting candidates in parallel numpy arrays (:class:`_ClassColumns`:
  sequence, samples, deadline, arrival, precomputed score/tail) plus
  aligned Python lists for the job objects and cached views.  Slots are
  appended in insertion order, removals tombstone in O(1), and the
  columns compact -- preserving insertion order -- when half the slots
  are dead.  This is what lets one dispatch query score *every* feasible
  candidate of a class in a single vectorized array pass.

* **Lazily-invalidated score heaps.**  Policies whose score for a fixed
  :class:`~repro.core.policies.JobView` is independent of time and
  executor (``static_score = True``, e.g. SJF) keep candidates in one
  score-ordered heap per class.  Dispatch peeks the best entry in
  O(log n); entries invalidated by removal or re-queue (preemption banks
  progress and changes the remaining work) are discarded lazily at peek
  time, which is how invalidation can ride the existing event handlers
  without ever walking the heaps.  For the shipped SJF shape the static
  score itself is computed straight off the class timing arrays
  (``1 / (min over feasible executors of (samples/spc)*period + eps)``),
  skipping the per-job view construction entirely.

* **Vectorized flat scans.**  Time-dependent policies cannot live in a
  heap (deadline proximity reorders as the clock advances), so their
  classes are scanned -- but as numpy expressions over the candidate
  columns, with the score formula inlined for the shipped shapes
  (``fifo``, ``edf``, ``slack``, ``makespan`` and the
  ``<deadline policy> + sjf`` compositions) and a masked ``argmax``
  supplying the tie-break.  Classes at or below ``scan_cutoff`` live
  candidates use an equivalent scalar loop (array setup costs more than
  it saves on tiny classes); both paths are bit-identical and the
  cutoff is tunable per index, which is how the property tests compare
  them directly.  Unknown policies fall back to calling the policy per
  candidate on the cached views -- or once per class batch when the
  policy implements the optional vectorized protocol (a
  ``score_batch(views, state, executor_index)`` attribute returning one
  score per view, which must agree float-for-float with ``__call__``).

Every path reproduces the brute-force sweep **bit-identically**, including
tie-breaking: the sweep keeps the first strictly-greater score in queue
insertion order, i.e. the maximum score with the minimum insertion
sequence among ties, which is exactly what ``argmax`` over
insertion-ordered columns returns (first occurrence of the maximum).  The
score arithmetic mirrors the policy functions expression-for-expression
-- numpy elementwise float64 operations perform the same IEEE-754
operations as the scalar Python arithmetic -- which
``tests/test_candidate_index.py`` asserts under churn and
``tests/test_perf_equivalence.py`` asserts end-to-end via golden digests.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.policies import ComposedPolicy, JobView, SchedulerView, _EPS

#: State handed to static policies when computing their (state-independent)
#: score once at index insertion time.
_STATIC_STATE = SchedulerView(now=0.0)


def _is_static(policy) -> bool:
    """Whether the policy's score is independent of time and executor."""
    if getattr(policy, "static_score", False):
        return True
    if isinstance(policy, ComposedPolicy):
        return all(_is_static(p) for _, p in policy.parts)
    return False


def resolve_program(policy) -> Tuple[str, object]:
    """Classify a policy into an index evaluation program.

    Returns ``(mode, data)`` where mode is one of:

    * ``"static"`` -- score precomputed at insertion, candidates heap-kept;
    * ``"scan1"``  -- single shipped primitive, inlined scan (data: kind);
    * ``"scan2"``  -- ``(w1, deadline-primitive) + (w2, static)`` composition,
      inlined scan with the static tail precomputed (data:
      ``(w1, kind1, w2, static_policy)``);
    * ``"generic"`` -- scan calling ``policy`` per candidate.
    """
    if _is_static(policy):
        return ("static", None)
    kind = getattr(policy, "scan_kind", None)
    if kind in ("fifo", "edf", "slack", "makespan"):
        return ("scan1", kind)
    if isinstance(policy, ComposedPolicy) and len(policy.parts) == 2:
        (w1, p1), (w2, p2) = policy.parts
        kind1 = getattr(p1, "scan_kind", None)
        if kind1 in ("edf", "slack") and _is_static(p2):
            return ("scan2", (w1, kind1, w2, p2))
    return ("generic", None)


class _ClassColumns:
    """Structure-of-arrays storage for one class's waiting candidates.

    Parallel columns indexed by *slot*: numpy arrays for everything a
    vectorized score expression consumes, Python lists for the job
    objects and (generic-mode) cached views.  Slots are assigned in
    insertion order and never reordered; a removal tombstones its slot
    (``seq = -1``) in O(1).  When an append finds the arrays full, the
    columns either compact (if at least half the slots are dead) or
    double -- both preserve the relative order of live slots, so
    position order always equals insertion order, which the tie-breaking
    contract depends on.  ``slot_of`` maps job id to slot and -- being
    insertion-ordered and purged on removal -- doubles as the iteration
    order for the scalar scan paths.

    ``deadlines`` stores ``nan`` for jobs without a deadline (the
    vectorized scans filter it back to the scalar paths' "no deadline"
    score); ``scores``/``tails`` hold the static-mode score and the
    scan2 precomputed static tail, zero-filled when unused.
    """

    _INITIAL = 16

    __slots__ = (
        "seqs",
        "samples",
        "deadlines",
        "arrivals",
        "scores",
        "tails",
        "jobs",
        "views",
        "slot_of",
        "n",
        "version",
        "dl_slots",
        "_dl_cache",
    )

    def __init__(self) -> None:
        cap = self._INITIAL
        self.seqs = np.full(cap, -1, dtype=np.int64)
        self.samples = np.zeros(cap, dtype=np.float64)
        self.deadlines = np.zeros(cap, dtype=np.float64)
        self.arrivals = np.zeros(cap, dtype=np.float64)
        self.scores = np.zeros(cap, dtype=np.float64)
        self.tails = np.zeros(cap, dtype=np.float64)
        self.jobs: List[object] = [None] * cap
        self.views: List[object] = [None] * cap
        self.slot_of: Dict[str, int] = {}
        self.n = 0  # high-water slot (live + tombstoned)
        self.version = 0  # bumped on every add/remove (scan memo key)
        # Slots of deadline-carrying entries, in insertion order (may
        # contain tombstones; the seq check filters them at scan time).
        self.dl_slots: List[int] = []
        self._dl_cache = None

    def dl_index(self) -> np.ndarray:
        """``dl_slots`` as an int64 gather index (cached until it changes)."""
        cache = self._dl_cache
        if cache is None or cache.size != len(self.dl_slots):
            cache = np.asarray(self.dl_slots, dtype=np.int64)
            self._dl_cache = cache
        return cache

    def __len__(self) -> int:
        return len(self.slot_of)

    def add(self, job_id, seq, job, samples, deadline, arrival, score, tail, view) -> None:
        n = self.n
        if n == len(self.jobs):
            self._compact_or_grow()
            n = self.n
        self.seqs[n] = seq
        self.samples[n] = samples
        self.deadlines[n] = np.nan if deadline is None else deadline
        self.arrivals[n] = arrival
        self.scores[n] = 0.0 if score is None else score
        self.tails[n] = 0.0 if tail is None else tail
        self.jobs[n] = job
        self.views[n] = view
        self.slot_of[job_id] = n
        self.n = n + 1
        self.version += 1
        if deadline is not None:
            self.dl_slots.append(n)

    def remove(self, job_id: str) -> None:
        slot = self.slot_of.pop(job_id, None)
        if slot is not None:
            self.seqs[slot] = -1
            self.jobs[slot] = None
            self.views[slot] = None
            self.version += 1

    def _compact_or_grow(self) -> None:
        n = self.n
        live = np.flatnonzero(self.seqs[:n] >= 0)  # ascending: keeps order
        k = int(live.size)
        cap = len(self.jobs)
        new_cap = cap if k * 2 <= cap else cap * 2
        self.seqs = self._packed(self.seqs, live, new_cap, fill=-1)
        self.samples = self._packed(self.samples, live, new_cap)
        self.deadlines = self._packed(self.deadlines, live, new_cap)
        self.arrivals = self._packed(self.arrivals, live, new_cap)
        self.scores = self._packed(self.scores, live, new_cap)
        self.tails = self._packed(self.tails, live, new_cap)
        pad: List[object] = [None] * (new_cap - k)
        self.jobs = [self.jobs[i] for i in live.tolist()] + pad
        self.views = [self.views[i] for i in live.tolist()] + pad
        self.slot_of = {self.jobs[slot].job_id: slot for slot in range(k)}
        if self.dl_slots:
            remap = np.full(n, -1, dtype=np.int64)
            remap[live] = np.arange(k, dtype=np.int64)
            moved = remap[np.asarray(self.dl_slots, dtype=np.int64)]
            self.dl_slots = moved[moved >= 0].tolist()
        self._dl_cache = None
        self.n = k

    @staticmethod
    def _packed(column, live, new_cap, *, fill=0):
        fresh = np.full(new_cap, fill, dtype=column.dtype)
        fresh[: live.size] = column[live]
        return fresh


class CandidateIndex:
    """Incrementally-maintained waiting-job candidates for one queue.

    One index serves one (queue, scoring context) pair: the per-tenant
    fill-job queue of a :class:`~repro.core.scheduler.FillJobScheduler`
    scores with that scheduler's views, and the global backlog keeps one
    index *per tenant* (a job's processing times -- and hence scores --
    differ per tenant).  The owning scheduler supplies the class table;
    ``view_provider``/``samples_provider`` supply the queue-specific job
    view and remaining-work lookup (the backlog's provider consults parked
    evicted records, mirroring ``GlobalScheduler._backlog_view``).
    """

    #: Classes with at most this many slots are scanned with the scalar
    #: loop: numpy array setup costs more than it saves on tiny classes.
    #: Both paths are bit-identical; tests pin the cutoff to force one.
    scan_cutoff = 8

    def __init__(
        self,
        table,  # FillJobScheduler: hosts class tables + exec feasibility sets
        policy,
        *,
        view_provider: Callable[[object], JobView],
        samples_provider: Callable[[object], float],
        state_provider: Callable[[float], SchedulerView],
    ) -> None:
        self.table = table
        self.policy = policy
        self.mode, self.program = resolve_program(policy)
        self._view_provider = view_provider
        self._samples_provider = samples_provider
        self._state_provider = state_provider
        self._classes: Dict[tuple, _ClassColumns] = {}
        self._heaps: Dict[tuple, List[tuple]] = {}
        self._nd_heaps: Dict[tuple, List[tuple]] = {}
        self._class_of: Dict[str, tuple] = {}
        self._class_arrays: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}
        self._scan_memo: Dict[tuple, tuple] = {}
        self._seq = itertools.count()
        # Deadline-driven scans score a no-deadline candidate as a
        # now-independent constant (0, or the scan2 static tail), so those
        # candidates keep a lazily-invalidated score heap of their own and
        # the vectorized scan gathers only the deadline-carrying slots.
        self._split_nodl = self.mode == "scan2" or (
            self.mode == "scan1" and self.program in ("edf", "slack")
        )
        # The shipped SJF shapes score straight off the class timing
        # arrays, skipping JobView construction on the add path entirely.
        self._static_sjf = self.mode == "static" and (
            getattr(policy, "scan_kind", None) == "sjf"
        )
        self._scan2_sjf_w2 = None
        if self.mode == "scan2":
            _w1, _kind1, w2, static_part = self.program
            if getattr(static_part, "scan_kind", None) == "sjf":
                self._scan2_sjf_w2 = w2

    # -- maintenance -------------------------------------------------------------

    def add(self, job) -> None:
        """Index a job that just entered the queue.

        Must be called *after* the job's record reflects its current
        remaining work (re-queues after preemption/eviction bank progress
        first), so the score is computed against what a later dispatch
        would actually run.
        """
        key = self.table.ensure_class(job.model_name, job.job_type)
        if not self.table.class_feasible(key):
            return  # never selectable on this scheduler's executors
        seq = next(self._seq)
        samples = self._samples_provider(job)
        score = tail = view = None
        if self.mode == "static":
            if self._static_sjf:
                score = self._sjf_score(key, samples)
            else:
                score = self.policy(self._view_provider(job), _STATIC_STATE, -1)
        elif self.mode == "scan2":
            if self._scan2_sjf_w2 is not None:
                tail = self._scan2_sjf_w2 * self._sjf_score(key, samples)
            else:
                _w1, _kind1, w2, static_part = self.program
                tail = w2 * static_part(self._view_provider(job), _STATIC_STATE, -1)
        elif self.mode == "generic":
            # Only the generic program hands views to the policy itself;
            # every other program scores off the class timing tables.
            view = self._view_provider(job)
        if self._split_nodl and job.deadline is None:
            # The candidate's score is the same at every clock: the scalar
            # expression with the deadline term zeroed, computed here once
            # (same operations, same order -- bit-identical).
            if self.mode == "scan2":
                w1 = self.program[0]
                score = (w1 * 0.0) + tail
            else:
                score = 0.0
        cols = self._classes.get(key)
        if cols is None:
            cols = self._classes[key] = _ClassColumns()
        cols.add(
            job.job_id, seq, job, samples, job.deadline, job.arrival_time,
            score, tail, view,
        )
        self._class_of[job.job_id] = key
        if self.mode == "static":
            heapq.heappush(
                self._heaps.setdefault(key, []), (-score, seq, job.job_id)
            )
        elif self._split_nodl and job.deadline is None:
            heapq.heappush(
                self._nd_heaps.setdefault(key, []), (-score, seq, job.job_id)
            )

    def remove(self, job_id: str) -> None:
        """Drop a job that left the queue (heap entries expire lazily)."""
        key = self._class_of.pop(job_id, None)
        if key is not None:
            self._classes[key].remove(job_id)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._class_of

    def __len__(self) -> int:
        return len(self._class_of)

    def _class_timing_arrays(self, key) -> Tuple[np.ndarray, np.ndarray]:
        """Feasible-executor ``(samples_per_cycle, cycle_period)`` columns.

        Class tables are immutable for the scheduler's lifetime (executor
        cycles never change; down states do not alter predicted times), so
        the arrays are built once per class.
        """
        arrays = self._class_arrays.get(key)
        if arrays is None:
            pairs = self.table.class_exec_times(key)
            count = len(pairs)
            spc = np.fromiter(
                (pair[0] for pair in pairs.values()), dtype=np.float64, count=count
            )
            period = np.fromiter(
                (pair[1] for pair in pairs.values()), dtype=np.float64, count=count
            )
            arrays = (spc, period)
            self._class_arrays[key] = arrays
        return arrays

    def _sjf_score(self, key, samples: float) -> float:
        """``sjf_policy`` off the class table, bit-identical to the view path.

        ``JobView.min_proc_time`` is the minimum over feasible executors of
        ``(samples / spc) * period``; elementwise float64 array arithmetic
        performs the identical IEEE-754 operations and ``min`` is
        order-independent, so the score matches float-for-float.
        """
        spc, period = self._class_timing_arrays(key)
        min_proc = float(((samples / spc) * period).min())
        return 1.0 / (min_proc + _EPS)

    # -- queries -----------------------------------------------------------------

    def best_for_executor(self, executor_index: int, now: float):
        """The best waiting job runnable on this executor, with its score.

        Returns ``(None, -inf)`` when no feasible candidate waits --
        detected in O(feasible classes), without touching any job.
        """
        classes = self.table.exec_classes.get(executor_index)
        best_score = -float("inf")
        best_seq = 0
        best_job = None
        if not classes:
            return None, best_score
        for key in classes:
            cols = self._classes.get(key)
            if not cols:
                continue
            if self.mode == "static":
                found = self._best_static(key, cols, now)
            else:
                # _scan_class pulls the (memoised) scheduler view lazily,
                # only for the programs that actually consult state.
                found = self._scan_class(key, cols, executor_index, now, None)
            if found is None:
                continue
            score, seq, job = found
            if best_job is None or score > best_score or (
                score == best_score and seq < best_seq
            ):
                best_score, best_seq, best_job = score, seq, job
        return best_job, best_score

    # -- static (heap) path -------------------------------------------------------

    def _best_static(self, key, cols, now):
        heap = self._heaps.get(key)
        slot_of = cols.slot_of
        seqs = cols.seqs
        while heap:
            _negscore, seq, job_id = heap[0]
            slot = slot_of.get(job_id)
            if slot is None or seqs[slot] != seq:
                heapq.heappop(heap)  # removed or re-queued since pushed
                continue
            if cols.arrivals[slot] > now:
                # A future-arrival job sits at the top (only possible when
                # the scheduler is driven directly, never from the event
                # loop, where submission happens at arrival time): fall
                # back to a linear scan honouring the arrival filter.
                return self._scan_static_linear(cols, now)
            return (float(cols.scores[slot]), seq, cols.jobs[slot])
        return None

    @staticmethod
    def _scan_static_linear(cols, now):
        jobs = cols.jobs
        scores = cols.scores
        seqs = cols.seqs
        best = None
        for slot in cols.slot_of.values():
            if jobs[slot].arrival_time > now:
                continue
            score = float(scores[slot])
            if best is None or score > best[0]:
                best = (score, int(seqs[slot]), jobs[slot])
        return best

    # -- scan paths ---------------------------------------------------------------

    def _scan_class(self, key, cols, executor_index, now, state):
        """Best candidate of one class on one executor, exactly scored.

        Candidates evaluate in insertion order and the first
        strictly-greater score wins, mirroring the brute-force sweep's
        tie-breaking; the vectorized path's masked ``argmax`` (first
        occurrence of the maximum over insertion-ordered columns) is the
        same rule.

        The shipped scan shapes depend on the executor only through the
        class timing pair ``(spc, period)`` (plus ``max_rem_time`` for
        makespan), so the result is memoised per class on
        ``(now, columns version, pair[, max_rem])``: within one dispatch
        sweep every executor sharing the pair reuses one scan.
        """
        if self.mode == "generic":
            return self._scan_class_generic(cols, executor_index, now, state)
        pair = self.table.class_exec_times(key)[executor_index]
        if self.mode == "scan1" and self.program == "makespan":
            if state is None:
                state = self._state_provider(now)
            cache_key = (now, cols.version, pair, state.max_rem_time)
        else:
            cache_key = (now, cols.version, pair)
        memo = self._scan_memo.get(key)
        if memo is not None and memo[0] == cache_key:
            return memo[1]
        if cols.n > self.scan_cutoff:
            if self._split_nodl:
                found = self._scan_split(key, cols, now, pair)
            else:
                found = self._scan_class_vector(cols, now, state, pair)
        else:
            found = self._scan_class_scalar(cols, now, state, pair)
        self._scan_memo[key] = (cache_key, found)
        return found

    def _scan_split(self, key, cols, now, pair):
        """Deadline scan over the gathered deadline slots + no-deadline heap.

        The class's best is the better of the two partition bests: higher
        score wins, the lower insertion sequence breaks ties -- exactly
        the first-strictly-greater rule over the full insertion order.
        """
        best_nd = self._best_nodl(key, cols, now)
        best_dl = None
        dl = cols.dl_index()
        if dl.size:
            seqs = cols.seqs[dl]
            arrivals = cols.arrivals[dl]
            valid = (seqs >= 0) & (arrivals <= now)
            if valid.any():
                deadlines = cols.deadlines[dl]
                spc, period = pair
                if self.mode == "scan2":
                    w1, kind1, _w2, _p2 = self.program
                    if kind1 == "slack":
                        slack = (deadlines - now) - (cols.samples[dl] / spc) * period
                    else:
                        slack = deadlines - now
                    s1 = 1.0 / (np.maximum(slack, 0.0) + _EPS)
                    scores = (w1 * s1) + cols.tails[dl]
                else:
                    if self.program == "slack":
                        slack = (deadlines - now) - (cols.samples[dl] / spc) * period
                    else:
                        slack = deadlines - now
                    scores = 1.0 / (np.maximum(slack, 0.0) + _EPS)
                masked = np.where(valid, scores, -np.inf)
                pick = int(masked.argmax())
                if not valid[pick]:
                    pick = int(np.flatnonzero(valid)[0])
                best_dl = (
                    float(masked[pick]),
                    int(seqs[pick]),
                    cols.jobs[int(dl[pick])],
                )
        if best_dl is None:
            return best_nd
        if best_nd is None:
            return best_dl
        if best_nd[0] > best_dl[0] or (
            best_nd[0] == best_dl[0] and best_nd[1] < best_dl[1]
        ):
            return best_nd
        return best_dl

    def _best_nodl(self, key, cols, now):
        """Best no-deadline candidate via its lazily-invalidated heap."""
        heap = self._nd_heaps.get(key)
        if not heap:
            return None
        slot_of = cols.slot_of
        seqs = cols.seqs
        while heap:
            _negscore, seq, job_id = heap[0]
            slot = slot_of.get(job_id)
            if slot is None or seqs[slot] != seq:
                heapq.heappop(heap)  # removed or re-queued since pushed
                continue
            if cols.arrivals[slot] > now:
                return self._scan_nodl_linear(cols, now)
            return (float(cols.scores[slot]), seq, cols.jobs[slot])
        return None

    @staticmethod
    def _scan_nodl_linear(cols, now):
        jobs = cols.jobs
        scores = cols.scores
        seqs = cols.seqs
        best = None
        for slot in cols.slot_of.values():
            job = jobs[slot]
            if job.deadline is not None or job.arrival_time > now:
                continue
            score = float(scores[slot])
            if best is None or score > best[0]:
                best = (score, int(seqs[slot]), job)
        return best

    def _scan_class_vector(self, cols, now, state, pair):
        """One array pass scoring every candidate of the class at once."""
        n = cols.n
        seqs = cols.seqs[:n]
        arrivals = cols.arrivals[:n]
        valid = (seqs >= 0) & (arrivals <= now)
        if not valid.any():
            return None
        if self.mode == "scan2":
            w1, kind1, _w2, _p2 = self.program
            spc, period = pair
            deadlines = cols.deadlines[:n]
            if kind1 == "slack":
                slack = (deadlines - now) - (cols.samples[:n] / spc) * period
            else:
                slack = deadlines - now
            s1 = 1.0 / (np.maximum(slack, 0.0) + _EPS)
            s1 = np.where(np.isnan(deadlines), 0.0, s1)
            scores = (w1 * s1) + cols.tails[:n]
        else:
            kind = self.program
            if kind == "fifo":
                scores = now - arrivals
            elif kind in ("edf", "slack"):
                spc, period = pair
                deadlines = cols.deadlines[:n]
                if kind == "slack":
                    slack = (deadlines - now) - (cols.samples[:n] / spc) * period
                else:
                    slack = deadlines - now
                scores = 1.0 / (np.maximum(slack, 0.0) + _EPS)
                scores = np.where(np.isnan(deadlines), 0.0, scores)
            else:  # makespan
                spc, period = pair
                proc = (cols.samples[:n] / spc) * period
                scores = 1.0 / (np.maximum(proc, state.max_rem_time) + _EPS)
        masked = np.where(valid, scores, -np.inf)
        slot = int(masked.argmax())
        if not valid[slot]:
            # Every valid score is -inf (possible only with an exotic
            # static tail): the scalar rule keeps the first valid entry.
            slot = int(np.flatnonzero(valid)[0])
        return (float(masked[slot]), int(seqs[slot]), cols.jobs[slot])

    def _scan_class_scalar(self, cols, now, state, pair):
        """Scalar mirror of the vectorized scan for tiny classes."""
        mode = self.mode
        jobs = cols.jobs
        samples = cols.samples
        seqs = cols.seqs
        best = best_seq = None
        best_job = None
        if mode == "scan2":
            w1, kind1, _w2, _p2 = self.program
            spc, period = pair
            use_proc = kind1 == "slack"
            tails = cols.tails
            for slot in cols.slot_of.values():
                job = jobs[slot]
                if job.arrival_time > now:
                    continue
                deadline = job.deadline
                if deadline is None:
                    s1 = 0.0
                else:
                    slack = (
                        (deadline - now) - (float(samples[slot]) / spc) * period
                        if use_proc
                        else deadline - now
                    )
                    s1 = 1.0 / (max(slack, 0.0) + _EPS)
                score = (w1 * s1) + float(tails[slot])
                if best is None or score > best:
                    best, best_seq, best_job = score, int(seqs[slot]), job
        else:
            kind = self.program
            if kind == "fifo":
                for slot in cols.slot_of.values():
                    job = jobs[slot]
                    if job.arrival_time > now:
                        continue
                    score = now - job.arrival_time
                    if best is None or score > best:
                        best, best_seq, best_job = score, int(seqs[slot]), job
            elif kind in ("edf", "slack"):
                use_proc = kind == "slack"
                spc, period = pair
                for slot in cols.slot_of.values():
                    job = jobs[slot]
                    if job.arrival_time > now:
                        continue
                    deadline = job.deadline
                    if deadline is None:
                        score = 0.0
                    else:
                        slack = (
                            (deadline - now) - (float(samples[slot]) / spc) * period
                            if use_proc
                            else deadline - now
                        )
                        score = 1.0 / (max(slack, 0.0) + _EPS)
                    if best is None or score > best:
                        best, best_seq, best_job = score, int(seqs[slot]), job
            else:  # makespan
                max_rem = state.max_rem_time
                spc, period = pair
                for slot in cols.slot_of.values():
                    job = jobs[slot]
                    if job.arrival_time > now:
                        continue
                    proc = (float(samples[slot]) / spc) * period
                    score = 1.0 / (max(proc, max_rem) + _EPS)
                    if best is None or score > best:
                        best, best_seq, best_job = score, int(seqs[slot]), job
        if best_job is None:
            return None
        return (best, best_seq, best_job)

    def _scan_class_generic(self, cols, executor_index, now, state):
        """The policy itself, on the cached views.

        A policy exposing the optional vectorized protocol -- a
        ``score_batch(views, state, executor_index)`` attribute returning
        one score per view, float-for-float equal to ``__call__`` -- is
        invoked once per class with every arrived candidate; ``argmax``
        over the insertion-ordered batch reproduces the first
        strictly-greater tie-break.  Policies without it are called per
        candidate, exactly as the brute-force sweep would.
        """
        if state is None:
            state = self._state_provider(now)
        policy = self.policy
        jobs = cols.jobs
        views = cols.views
        seqs = cols.seqs
        batch = getattr(policy, "score_batch", None)
        if batch is not None:
            slots = [
                slot
                for slot in cols.slot_of.values()
                if jobs[slot].arrival_time <= now
            ]
            if not slots:
                return None
            scores = np.asarray(
                batch([views[slot] for slot in slots], state, executor_index),
                dtype=np.float64,
            )
            pick = int(scores.argmax())
            slot = slots[pick]
            return (float(scores[pick]), int(seqs[slot]), jobs[slot])
        best = best_seq = None
        best_job = None
        for slot in cols.slot_of.values():
            job = jobs[slot]
            if job.arrival_time > now:
                continue
            score = policy(views[slot], state, executor_index)
            if best is None or score > best:
                best, best_seq, best_job = score, int(seqs[slot]), job
        if best_job is None:
            return None
        return (best, best_seq, best_job)

"""Incremental candidate indexes for the dispatch hot path.

Before this module, every simulated event triggered a *dispatch sweep*:
each idle executor re-scored every waiting job with the scheduling policy,
making per-event cost ``O(idle executors x waiting jobs)``.  The
:class:`CandidateIndex` replaces that sweep with incremental state that is
maintained as jobs enter and leave a queue:

* **Job classes.**  Two fill jobs with the same ``(model_name, job_type)``
  behave identically on a given executor up to their sample count: they
  share one :class:`~repro.core.executor.FillExecutionEstimate` per
  executor, hence the same feasibility and the same seconds-per-sample.
  The owning scheduler memoises one *class table* per class -- the
  ``(samples_per_cycle, cycle_period)`` pair per executor plus the set of
  feasible executors -- so per-job state collapses to a sample count.

* **Per-executor feasibility sets.**  Each executor knows which classes it
  can run; an idle executor whose feasible classes hold no waiting
  candidate is skipped in O(1) instead of scanning the whole backlog.

* **Lazily-invalidated score heaps.**  Policies whose score for a fixed
  :class:`~repro.core.policies.JobView` is independent of time and
  executor (``static_score = True``, e.g. SJF) keep candidates in one
  score-ordered heap per class.  Dispatch peeks the best entry in
  O(log n); entries invalidated by removal or re-queue (preemption banks
  progress and changes the remaining work) are discarded lazily at peek
  time, which is how invalidation can ride the existing event handlers
  without ever walking the heaps.

* **Exact flat scans.**  Time-dependent policies cannot live in a heap
  (deadline proximity reorders as the clock advances), so their classes
  are scanned -- but over flat per-class candidate tuples with the score
  expression inlined for the shipped shapes (``fifo``, ``edf``, ``slack``,
  ``makespan`` and the ``<deadline policy> + sjf`` compositions), and only
  over classes feasible on the executor.  Unknown policies fall back to
  calling the policy per candidate on the cached views.

Every path reproduces the brute-force sweep **bit-identically**, including
tie-breaking: the sweep keeps the first strictly-greater score in queue
insertion order, i.e. the maximum score with the minimum insertion
sequence among ties, which is exactly the ``(score, -seq)`` order the
index maintains.  The score arithmetic mirrors the policy functions
expression-for-expression (same IEEE-754 operation order), which
``tests/test_candidate_index.py`` asserts under churn and
``tests/test_perf_equivalence.py`` asserts end-to-end via golden digests.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Tuple

from repro.core.policies import ComposedPolicy, JobView, SchedulerView, _EPS

#: State handed to static policies when computing their (state-independent)
#: score once at index insertion time.
_STATIC_STATE = SchedulerView(now=0.0)

#: Entry tuple layout: (seq, job, samples, deadline, arrival, score, tail, view)
_SEQ, _JOB, _SAMPLES, _DEADLINE, _ARRIVAL, _SCORE, _TAIL, _VIEW = range(8)


def _is_static(policy) -> bool:
    """Whether the policy's score is independent of time and executor."""
    if getattr(policy, "static_score", False):
        return True
    if isinstance(policy, ComposedPolicy):
        return all(_is_static(p) for _, p in policy.parts)
    return False


def resolve_program(policy) -> Tuple[str, object]:
    """Classify a policy into an index evaluation program.

    Returns ``(mode, data)`` where mode is one of:

    * ``"static"`` -- score precomputed at insertion, candidates heap-kept;
    * ``"scan1"``  -- single shipped primitive, inlined scan (data: kind);
    * ``"scan2"``  -- ``(w1, deadline-primitive) + (w2, static)`` composition,
      inlined scan with the static tail precomputed (data:
      ``(w1, kind1, w2, static_policy)``);
    * ``"generic"`` -- scan calling ``policy`` per candidate.
    """
    if _is_static(policy):
        return ("static", None)
    kind = getattr(policy, "scan_kind", None)
    if kind in ("fifo", "edf", "slack", "makespan"):
        return ("scan1", kind)
    if isinstance(policy, ComposedPolicy) and len(policy.parts) == 2:
        (w1, p1), (w2, p2) = policy.parts
        kind1 = getattr(p1, "scan_kind", None)
        if kind1 in ("edf", "slack") and _is_static(p2):
            return ("scan2", (w1, kind1, w2, p2))
    return ("generic", None)


class CandidateIndex:
    """Incrementally-maintained waiting-job candidates for one queue.

    One index serves one (queue, scoring context) pair: the per-tenant
    fill-job queue of a :class:`~repro.core.scheduler.FillJobScheduler`
    scores with that scheduler's views, and the global backlog keeps one
    index *per tenant* (a job's processing times -- and hence scores --
    differ per tenant).  The owning scheduler supplies the class table;
    ``view_provider``/``samples_provider`` supply the queue-specific job
    view and remaining-work lookup (the backlog's provider consults parked
    evicted records, mirroring ``GlobalScheduler._backlog_view``).
    """

    def __init__(
        self,
        table,  # FillJobScheduler: hosts class tables + exec feasibility sets
        policy,
        *,
        view_provider: Callable[[object], JobView],
        samples_provider: Callable[[object], float],
        state_provider: Callable[[float], SchedulerView],
    ) -> None:
        self.table = table
        self.policy = policy
        self.mode, self.program = resolve_program(policy)
        self._view_provider = view_provider
        self._samples_provider = samples_provider
        self._state_provider = state_provider
        self._classes: Dict[tuple, Dict[str, tuple]] = {}
        self._heaps: Dict[tuple, List[tuple]] = {}
        self._class_of: Dict[str, tuple] = {}
        self._seq = itertools.count()

    # -- maintenance -------------------------------------------------------------

    def add(self, job) -> None:
        """Index a job that just entered the queue.

        Must be called *after* the job's record reflects its current
        remaining work (re-queues after preemption/eviction bank progress
        first), so the score is computed against what a later dispatch
        would actually run.
        """
        key = self.table.ensure_class(job.model_name, job.job_type)
        if not self.table.class_feasible(key):
            return  # never selectable on this scheduler's executors
        seq = next(self._seq)
        score = tail = view = None
        if self.mode != "scan1":
            # scan1 programs score from the class table alone (samples,
            # deadline, arrival); everything else needs the job's view --
            # for the precomputed static score/tail or to hand to the
            # policy itself.  Built on demand elsewhere either way.
            view = self._view_provider(job)
        if self.mode == "static":
            score = self.policy(view, _STATIC_STATE, -1)
        elif self.mode == "scan2":
            w1, kind1, w2, static_part = self.program
            tail = w2 * static_part(view, _STATIC_STATE, -1)
        entry = (
            seq,
            job,
            self._samples_provider(job),
            job.deadline,
            job.arrival_time,
            score,
            tail,
            view,
        )
        self._classes.setdefault(key, {})[job.job_id] = entry
        self._class_of[job.job_id] = key
        if self.mode == "static":
            heapq.heappush(
                self._heaps.setdefault(key, []), (-score, seq, job.job_id)
            )

    def remove(self, job_id: str) -> None:
        """Drop a job that left the queue (heap entries expire lazily)."""
        key = self._class_of.pop(job_id, None)
        if key is not None:
            self._classes[key].pop(job_id, None)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._class_of

    def __len__(self) -> int:
        return len(self._class_of)

    # -- queries -----------------------------------------------------------------

    def best_for_executor(self, executor_index: int, now: float):
        """The best waiting job runnable on this executor, with its score.

        Returns ``(None, -inf)`` when no feasible candidate waits --
        detected in O(feasible classes), without touching any job.
        """
        classes = self.table.exec_classes.get(executor_index)
        best_score = -float("inf")
        best_seq = 0
        best_job = None
        if not classes:
            return None, best_score
        for key in classes:
            entries = self._classes.get(key)
            if not entries:
                continue
            if self.mode == "static":
                found = self._best_static(key, entries, now)
            else:
                # _scan_class pulls the (memoised) scheduler view lazily,
                # only for the programs that actually consult state.
                found = self._scan_class(key, entries, executor_index, now, None)
            if found is None:
                continue
            score, seq, job = found
            if best_job is None or score > best_score or (
                score == best_score and seq < best_seq
            ):
                best_score, best_seq, best_job = score, seq, job
        return best_job, best_score

    # -- static (heap) path -------------------------------------------------------

    def _best_static(self, key, entries, now):
        heap = self._heaps.get(key)
        while heap:
            negscore, seq, job_id = heap[0]
            entry = entries.get(job_id)
            if entry is None or entry[_SEQ] != seq:
                heapq.heappop(heap)  # removed or re-queued since pushed
                continue
            if entry[_ARRIVAL] > now:
                # A future-arrival job sits at the top (only possible when
                # the scheduler is driven directly, never from the event
                # loop, where submission happens at arrival time): fall
                # back to a linear scan honouring the arrival filter.
                return self._scan_static_linear(entries, now)
            return (entry[_SCORE], seq, entry[_JOB])
        return None

    @staticmethod
    def _scan_static_linear(entries, now):
        best = None
        for entry in entries.values():
            if entry[_ARRIVAL] > now:
                continue
            if best is None or entry[_SCORE] > best[0]:
                best = (entry[_SCORE], entry[_SEQ], entry[_JOB])
        return best

    # -- scan paths ---------------------------------------------------------------

    def _scan_class(self, key, entries, executor_index, now, state):
        """Best candidate of one class on one executor, exactly scored.

        Entries iterate in insertion order and the first strictly-greater
        score wins, mirroring the brute-force sweep's tie-breaking.
        """
        mode = self.mode
        best = best_seq = None
        best_job = None
        if mode == "scan2":
            w1, kind1, _w2, _p2 = self.program
            spc, period = self.table.class_exec_times(key)[executor_index]
            use_proc = kind1 == "slack"
            for entry in entries.values():
                if entry[_ARRIVAL] > now:
                    continue
                deadline = entry[_DEADLINE]
                if deadline is None:
                    s1 = 0.0
                else:
                    slack = (
                        (deadline - now) - (entry[_SAMPLES] / spc) * period
                        if use_proc
                        else deadline - now
                    )
                    s1 = 1.0 / (max(slack, 0.0) + _EPS)
                score = (w1 * s1) + entry[_TAIL]
                if best is None or score > best:
                    best, best_seq, best_job = score, entry[_SEQ], entry[_JOB]
        elif mode == "scan1":
            kind = self.program
            if kind == "fifo":
                for entry in entries.values():
                    if entry[_ARRIVAL] > now:
                        continue
                    score = now - entry[_ARRIVAL]
                    if best is None or score > best:
                        best, best_seq, best_job = score, entry[_SEQ], entry[_JOB]
            elif kind in ("edf", "slack"):
                use_proc = kind == "slack"
                spc, period = self.table.class_exec_times(key)[executor_index]
                for entry in entries.values():
                    if entry[_ARRIVAL] > now:
                        continue
                    deadline = entry[_DEADLINE]
                    if deadline is None:
                        score = 0.0
                    else:
                        slack = (
                            (deadline - now) - (entry[_SAMPLES] / spc) * period
                            if use_proc
                            else deadline - now
                        )
                        score = 1.0 / (max(slack, 0.0) + _EPS)
                    if best is None or score > best:
                        best, best_seq, best_job = score, entry[_SEQ], entry[_JOB]
            else:  # makespan
                if state is None:
                    state = self._state_provider(now)
                max_rem = state.max_rem_time
                spc, period = self.table.class_exec_times(key)[executor_index]
                for entry in entries.values():
                    if entry[_ARRIVAL] > now:
                        continue
                    proc = (entry[_SAMPLES] / spc) * period
                    score = 1.0 / (max(proc, max_rem) + _EPS)
                    if best is None or score > best:
                        best, best_seq, best_job = score, entry[_SEQ], entry[_JOB]
        else:  # generic: the policy itself, on the cached views
            if state is None:
                state = self._state_provider(now)
            policy = self.policy
            for entry in entries.values():
                if entry[_ARRIVAL] > now:
                    continue
                score = policy(entry[_VIEW], state, executor_index)
                if best is None or score > best:
                    best, best_seq, best_job = score, entry[_SEQ], entry[_JOB]
        if best_job is None:
            return None
        return (best, best_seq, best_job)

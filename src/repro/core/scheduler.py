"""The Fill Job Scheduler.

The scheduler is the interface between the pipeline bubbles of the main job
and the outside world (a higher-level cluster scheduler such as
:class:`~repro.core.global_scheduler.GlobalScheduler`, or a user submitting
fill jobs).  It knows every device's bubble cycle (through that device's
executor), can therefore predict any fill job's processing time on any
device, and assigns queued jobs to devices according to a user-defined
scoring policy whenever a device becomes free (Section 4.4).  Running jobs
can be preempted (:meth:`FillJobScheduler.preempt`): their partial progress
is banked and the remainder re-queued.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.core.candidates import CandidateIndex
from repro.core.executor import FillExecutionEstimate, FillJobExecutor
from repro.core.policies import JobView, SchedulerView, SchedulingPolicy, sjf_policy
from repro.models.base import ModelSpec
from repro.models.configs import JobType
from repro.models.registry import build_model
from repro.utils.ordered import OrderedIdSet
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class FillJob:
    """A fill job submitted to the scheduler.

    Parameters
    ----------
    job_id:
        Unique identifier.
    model_name:
        Registry name of the model (``"bert-base"``).
    job_type:
        Training or batch inference.
    num_samples:
        Samples the job must process to complete.
    arrival_time:
        Submission time in seconds (simulation clock).
    deadline:
        Optional absolute deadline.
    tenant:
        Name of the submitting tenant in multi-tenant simulations (``None``
        for single-main-job runs and tenant-less backlogs).
    """

    job_id: str
    model_name: str
    job_type: JobType
    num_samples: float
    arrival_time: float = 0.0
    deadline: Optional[float] = None
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive(self.num_samples, "num_samples")
        check_non_negative(self.arrival_time, "arrival_time")


class FillJobState(str, enum.Enum):
    """Lifecycle of a fill job inside the scheduler."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"


@dataclass
class ExecutorState:
    """The scheduler's view of one device's executor.

    ``is_down`` marks an executor whose device is currently unavailable
    (failed, or belonging to a tenant that left); down executors are never
    dispatched to, and :meth:`FillJobScheduler.on_executor_lost` requeues
    whatever was running when the device went down.
    """

    executor_index: int
    executor: FillJobExecutor
    busy_until: float = 0.0
    current_job_id: Optional[str] = None
    is_down: bool = False

    def remaining_time(self, now: float) -> float:
        """Seconds until this executor is free again."""
        return max(0.0, self.busy_until - now)

    @property
    def is_busy(self) -> bool:
        """True while a fill job is assigned."""
        return self.current_job_id is not None

    @property
    def is_available(self) -> bool:
        """True when the executor can take a new job right now."""
        return not self.is_busy and not self.is_down


@dataclass
class JobRecord:
    """Bookkeeping for a submitted job.

    ``flops_executed`` holds, while the job runs, the FLOPs scheduled for
    the *current* run segment (plus any progress banked by earlier,
    preempted segments); after completion it is the job's total executed
    FLOPs.  Preemption banks the partial progress of the interrupted
    segment into ``flops_banked`` / ``busy_banked_seconds`` and shrinks
    ``samples_remaining`` so re-dispatch only schedules the leftover work.

    The ``*_imported`` fields mark the share of the banked totals that was
    accrued on a *previous* host tenant's devices before the job migrated
    here (evicted from a departed tenant, re-placed by the global
    scheduler): the banked totals must keep it so remaining work is priced
    correctly, but per-tenant device accounting must exclude it -- this
    tenant's devices never supplied that time.
    """

    job: FillJob
    state: FillJobState = FillJobState.QUEUED
    assigned_executor: Optional[int] = None
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    flops_executed: float = 0.0
    flops_banked: float = 0.0
    busy_banked_seconds: float = 0.0
    samples_remaining: float = field(init=False, default=0.0)
    num_preemptions: int = 0
    flops_imported: float = 0.0
    busy_imported_seconds: float = 0.0
    samples_imported: float = 0.0

    def __post_init__(self) -> None:
        self.samples_remaining = self.job.num_samples

    @property
    def jct(self) -> Optional[float]:
        """Job completion time (completion minus arrival), if finished."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.job.arrival_time

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the job finished by its deadline (``None`` if undecided)."""
        if self.job.deadline is None:
            return None
        if self.completion_time is None:
            return None
        return self.completion_time <= self.job.deadline


class FillJobScheduler:
    """Policy-driven assignment of fill jobs to devices' bubble cycles.

    Parameters
    ----------
    executors:
        One :class:`~repro.core.executor.FillJobExecutor` per device (or per
        representative device group), keyed by executor index.
    policy:
        Scoring function; the queued job with the highest score is submitted
        to a freed device.  Defaults to Shortest-Job-First.
    model_resolver:
        Maps a job's ``model_name`` to a :class:`ModelSpec`; defaults to the
        package model registry.
    use_cache:
        When true (the default) the scheduler memoises per-job processing
        times and policy views and the executors share their estimate
        caches process-wide; disabling it rebuilds every view and dict per
        call and replaces the shared estimate caches with scheduler-private
        per-executor memos (the pre-optimisation semantics) -- the
        brute-force reference mode the equivalence tests compare against.
    """

    def __init__(
        self,
        executors: Mapping[int, FillJobExecutor],
        *,
        policy: SchedulingPolicy = sjf_policy,
        model_resolver: Callable[[str], ModelSpec] = build_model,
        use_cache: bool = True,
    ) -> None:
        if not executors:
            raise ValueError("the scheduler needs at least one executor")
        self.executors: Dict[int, ExecutorState] = {
            idx: ExecutorState(executor_index=idx, executor=ex)
            for idx, ex in executors.items()
        }
        self.policy = policy
        self.model_resolver = model_resolver
        self.use_cache = use_cache
        self.records: Dict[str, JobRecord] = {}
        self._queue = OrderedIdSet()
        # Executor indices in declaration order (dispatch iterates them in
        # this order), and the subset currently without a running job.
        self._executor_order: List[int] = list(self.executors)
        self._order_pos: Dict[int, int] = {
            idx: pos for pos, idx in enumerate(self._executor_order)
        }
        self._idle = set(self._executor_order)
        # Per-job memos, valid only while the underlying inputs are fixed:
        # full-sample processing times never change for a submitted job;
        # policy views depend on ``samples_remaining`` and are invalidated
        # whenever it changes (assignment, completion, preemption).
        self._full_times: Dict[str, Dict[int, float]] = {}
        self._views: Dict[str, JobView] = {}
        # Brute-force mode bypasses the process-wide shared estimate caches
        # entirely and memoises per (executor, model name, job type) in
        # this scheduler only -- exactly the pre-optimisation executor
        # cache semantics -- so it is a genuine oracle for shared-cache
        # keying bugs, at pre-optimisation cost.
        self._private_estimates: Dict[tuple, Optional[FillExecutionEstimate]] = {}
        # Class tables: jobs sharing (model_name, job_type) share estimates
        # on every executor, so feasibility and seconds-per-sample are
        # per-*class* state, computed once.  ``exec_classes`` inverts the
        # table into per-executor feasibility sets for the dispatch index.
        self._class_times: Dict[tuple, List[tuple]] = {}
        self._class_exec: Dict[tuple, Dict[int, tuple]] = {}
        self._class_fits: Dict[tuple, bool] = {}
        self.exec_classes: Dict[int, set] = {idx: set() for idx in self._executor_order}
        # Memoised policy-facing occupancy view: rebuilt only when the
        # clock moved or any executor's busy_until changed since.
        self._state_version = 0
        self._state_view_memo: Optional[tuple] = None
        # The incremental candidate index over this scheduler's own queue
        # (arrival-order submissions plus preemption/failure re-queues).
        self._index: Optional[CandidateIndex] = (
            CandidateIndex(
                self,
                policy,
                view_provider=self.job_view,
                samples_provider=self._queued_samples,
                state_provider=self.scheduler_view,
            )
            if use_cache
            else None
        )

    # -- submission -------------------------------------------------------------

    def submit(self, job: FillJob) -> JobRecord:
        """Queue a fill job; rejects jobs that fit no executor."""
        if job.job_id in self.records:
            raise ValueError(f"job id {job.job_id!r} already submitted")
        record = JobRecord(job=job)
        self.records[job.job_id] = record
        if not self.fits_any(job):
            record.state = FillJobState.REJECTED
            return record
        self._queue.append(job.job_id)
        if self._index is not None:
            self._index.add(job)
        return record

    # -- predictions -------------------------------------------------------------

    def _estimate(
        self, executor_index: int, model: ModelSpec, job_type: JobType
    ) -> Optional[FillExecutionEstimate]:
        """One executor's estimate, honouring this scheduler's cache mode."""
        executor = self.executors[executor_index].executor
        if self.use_cache:
            return executor.build_estimate(model, job_type)
        key = (executor_index, model.name, job_type)
        if key not in self._private_estimates:
            self._private_estimates[key] = executor.build_estimate(
                model, job_type, use_cache=False
            )
        return self._private_estimates[key]

    def estimate_for(self, job: FillJob, executor_index: int) -> Optional[FillExecutionEstimate]:
        """The executor's estimate of running ``job`` (``None`` if it cannot)."""
        model = self.model_resolver(job.model_name)
        return self._estimate(executor_index, model, job.job_type)

    # -- job classes --------------------------------------------------------------

    def ensure_class(self, model_name: str, job_type: JobType) -> tuple:
        """Memoise the per-executor timing table of one job class.

        A *class* is a ``(model_name, job_type)`` pair: all its jobs share
        one estimate per executor, so feasibility and the
        ``(samples_per_cycle, cycle_period)`` timing pair are class-wide.
        Infeasible executors are marked with ``samples_per_cycle = -1``.
        Only used on the cached fast path.
        """
        key = (model_name, job_type)
        if key in self._class_times:
            return key
        model = self.model_resolver(model_name)
        times: List[tuple] = []
        exec_map: Dict[int, tuple] = {}
        for idx in self._executor_order:
            estimate = self._estimate(idx, model, job_type)
            if estimate is None or estimate.samples_per_cycle <= 0:
                times.append((idx, -1.0, 0.0))
            else:
                pair = (estimate.samples_per_cycle, estimate.cycle_period)
                times.append((idx,) + pair)
                exec_map[idx] = pair
                self.exec_classes[idx].add(key)
        self._class_times[key] = times
        self._class_exec[key] = exec_map
        self._class_fits[key] = bool(exec_map)
        return key

    def class_feasible(self, key: tuple) -> bool:
        """Whether the (ensured) class fits at least one executor."""
        return self._class_fits[key]

    def class_exec_times(self, key: tuple) -> Dict[int, tuple]:
        """Feasible executors of the class, with their timing pairs."""
        return self._class_exec[key]

    def fits_any(self, job: FillJob) -> bool:
        """Whether at least one executor can ever run the job.

        On the cached path this is one class-table lookup; the brute-force
        mode short-circuits at the first finite estimate instead of
        pricing the job on every executor.
        """
        if self.use_cache:
            return self._class_fits[self.ensure_class(job.model_name, job.job_type)]
        model = self.model_resolver(job.model_name)
        for idx in self._executor_order:
            estimate = self._estimate(idx, model, job.job_type)
            if estimate is not None and estimate.samples_per_cycle > 0:
                return True
        return False

    def processing_times(
        self, job: FillJob, *, num_samples: Optional[float] = None
    ) -> Dict[int, float]:
        """Predicted processing time of ``job`` on every executor.

        ``num_samples`` overrides the sample count (used to price the
        *remaining* work of a previously-preempted job).  Full-sample times
        are memoised per job: they depend only on the executors' bubble
        cycles, which are fixed for the lifetime of a run.
        """
        if num_samples is None and self.use_cache:
            cached = self._full_times.get(job.job_id)
            if cached is not None:
                return cached
        samples = job.num_samples if num_samples is None else num_samples
        times: Dict[int, float] = {}
        if self.use_cache:
            # Same arithmetic as FillExecutionEstimate.processing_time,
            # sourced from the class table instead of per-job estimate
            # lookups (bit-identical; the equivalence tests prove it).
            key = self.ensure_class(job.model_name, job.job_type)
            if not samples > 0 and self._class_fits[key]:
                check_positive(samples, "num_samples")
            for idx, spc, period in self._class_times[key]:
                times[idx] = float("inf") if spc <= 0 else (samples / spc) * period
        else:
            for idx in self.executors:
                estimate = self.estimate_for(job, idx)
                times[idx] = (
                    float("inf") if estimate is None else estimate.processing_time(samples)
                )
        if num_samples is None and self.use_cache:
            self._full_times[job.job_id] = times
        return times

    def expected_completion(self, job_id: str, now: float) -> float:
        """Expected completion time of a queued/running job.

        Running jobs report their scheduled completion; queued jobs report an
        optimistic estimate assuming they are next on the fastest executor.
        """
        record = self.records[job_id]
        if record.state is FillJobState.COMPLETED:
            assert record.completion_time is not None
            return record.completion_time
        if record.state is FillJobState.RUNNING:
            assert record.assigned_executor is not None
            return self.executors[record.assigned_executor].busy_until
        times = self.processing_times(record.job)  # memoised full-sample path
        best = float("inf")
        for idx, proc in times.items():
            if proc == float("inf"):
                continue
            start = now + self.executors[idx].remaining_time(now)
            best = min(best, start + proc)
        return best

    def can_meet_deadline(self, job_id: str, now: float) -> bool:
        """Whether the job's deadline can still be met under current load."""
        record = self.records[job_id]
        if record.job.deadline is None:
            return True
        return self.expected_completion(job_id, now) <= record.job.deadline

    # -- assignment ---------------------------------------------------------------

    def job_view(self, job: FillJob) -> JobView:
        """The policy-facing view of a (possibly partially-run) job.

        Views are memoised per job while the job waits in the queue -- the
        dispatch sweep asks for the same view once per idle executor -- and
        invalidated whenever ``samples_remaining`` changes (assignment,
        completion, preemption), so banked progress is always reflected.
        """
        if self.use_cache:
            view = self._views.get(job.job_id)
            if view is not None:
                return view
        record = self.records.get(job.job_id)
        remaining = None if record is None else record.samples_remaining
        if remaining is not None and remaining == job.num_samples:
            remaining = None  # identical times; lets the full-sample memo serve it
        view = JobView(
            job_id=job.job_id,
            arrival_time=job.arrival_time,
            proc_times=self.processing_times(job, num_samples=remaining),
            deadline=job.deadline,
        )
        if self.use_cache:
            self._views[job.job_id] = view
        return view

    def _forget_view(self, job_id: str) -> None:
        self._views.pop(job_id, None)

    def forget_job(self, job_id: str) -> None:
        """Drop every memo held for a job this scheduler will not see again.

        Called by the global scheduler when a shared-backlog job is placed
        on a *different* tenant, so per-tenant memos do not accumulate one
        entry per backlog job ever priced here.
        """
        self._views.pop(job_id, None)
        self._full_times.pop(job_id, None)

    def _queued_samples(self, job: FillJob) -> float:
        """Samples a dispatch of the queued job would actually run."""
        record = self.records.get(job.job_id)
        return job.num_samples if record is None else record.samples_remaining

    def scheduler_view(self, now: float) -> SchedulerView:
        """The policy-facing view of current executor occupancy.

        On the cached path the view is memoised until the clock moves or
        any executor's ``busy_until`` changes (assignment, completion,
        preemption): within one dispatch sweep the same view serves every
        executor between assignments.
        """
        if self.use_cache:
            memo = self._state_view_memo
            if memo is not None and memo[0] == now and memo[1] == self._state_version:
                return memo[2]
        view = SchedulerView(
            now=now,
            rem_times={idx: st.remaining_time(now) for idx, st in self.executors.items()},
        )
        if self.use_cache:
            self._state_view_memo = (now, self._state_version, view)
        return view

    def queued_jobs(self, now: Optional[float] = None) -> List[FillJob]:
        """Jobs currently waiting for a device (arrived by ``now`` if given)."""
        jobs = [self.records[jid].job for jid in self._queue]
        if now is not None:
            jobs = [j for j in jobs if j.arrival_time <= now]
        return jobs

    def has_queued_jobs(self) -> bool:
        """Whether any job is waiting (regardless of arrival time)."""
        return bool(self._queue)

    def idle_executor_indices(self) -> List[int]:
        """Indices of available (not busy, not down) executors, in declaration order."""
        order = self._executor_order
        idle = self._idle
        if len(idle) == len(order):
            return order
        if len(idle) * 8 <= len(order):
            # A mostly-busy cluster (the steady state of every saturated
            # scenario): sorting the few idle indices by declaration
            # position beats walking the full executor order.
            pos = self._order_pos
            return sorted(idle, key=pos.__getitem__)
        return [idx for idx in order if idx in idle]

    # -- availability (failures, elastic tenants) ---------------------------------

    def set_down(self, executor_index: int) -> None:
        """Mark an idle executor's device as unavailable.

        Callers that may interrupt a *running* job use
        :meth:`on_executor_lost` instead, which banks the job's progress
        first.
        """
        state = self.executors[executor_index]
        state.is_down = True
        self._idle.discard(executor_index)

    def on_executor_recovered(self, executor_index: int) -> None:
        """Bring a down executor's device back into dispatch rotation."""
        state = self.executors[executor_index]
        if not state.is_down:
            return
        state.is_down = False
        if not state.is_busy:
            self._idle.add(executor_index)

    def on_executor_lost(self, executor_index: int, now: float) -> Optional[str]:
        """Handle the executor's device failing (or being withdrawn) at ``now``.

        The running fill job, if any, is interrupted exactly like a
        preemption: its partial progress (FLOPs, samples, busy time,
        pro-rated by elapsed wall-clock) is banked on its record and its
        remainder re-queued, so a later dispatch resumes it on a healthy
        device instead of restarting from scratch.  The executor is then
        marked down until :meth:`on_executor_recovered`.  Returns the
        interrupted job's id (``None`` if the device was idle).  Any
        completion event still scheduled for the lost job becomes stale
        (the executor no longer carries it) and is skipped by the kernel's
        stale-completion guard.
        """
        state = self.executors[executor_index]
        if state.is_down:
            return None
        job_id = self.preempt(executor_index, now) if state.is_busy else None
        self.set_down(executor_index)
        return job_id

    def evict_queued(self, job_id: str) -> JobRecord:
        """Remove a queued job from this scheduler and return its record.

        Used when this scheduler's tenant leaves the cluster: the record
        (with any banked partial progress) travels back to the global
        backlog so the job can resume on another tenant.  After eviction
        this scheduler holds no trace of the job.
        """
        record = self.records[job_id]
        if record.state is not FillJobState.QUEUED:
            raise RuntimeError(
                f"only queued jobs can be evicted; {job_id!r} is {record.state}"
            )
        self._queue.remove(job_id)
        if self._index is not None:
            self._index.remove(job_id)
        del self.records[job_id]
        self.forget_job(job_id)
        return record

    def restore_progress(self, job_id: str, carried: "JobRecord") -> None:
        """Restore banked partial progress onto a freshly-submitted record.

        Used by the global scheduler when a job evicted from a departed
        tenant is re-placed here: the parked record's remaining work and
        banked totals replace the fresh submission's, and every memo that
        priced the job at its full sample count (cached view, candidate
        index entry) is invalidated so dispatch scores only the leftover.
        """
        record = self.records[job_id]
        record.samples_remaining = carried.samples_remaining
        record.flops_banked = carried.flops_banked
        record.flops_executed = carried.flops_banked
        record.busy_banked_seconds = carried.busy_banked_seconds
        record.num_preemptions = carried.num_preemptions
        # Everything banked so far happened on other tenants' devices
        # (including anything the carried record itself imported); mark it
        # so this tenant's metrics attribute only locally-supplied time.
        record.flops_imported = carried.flops_banked
        record.busy_imported_seconds = carried.busy_banked_seconds
        record.samples_imported = carried.job.num_samples - carried.samples_remaining
        self._forget_view(job_id)
        if self._index is not None and job_id in self._index:
            self._index.remove(job_id)
            self._index.add(record.job)

    def select_job_scored(
        self, executor_index: int, now: float
    ) -> "tuple[Optional[FillJob], float]":
        """The best queued job for this device and its policy score.

        Returns ``(None, -inf)`` when no queued job fits the device.  Used
        directly by the global scheduler, which compares this score against
        the global backlog's best.  On the cached path the answer comes
        from the incremental candidate index (O(log n) for static-score
        policies, a feasible-classes-only scan otherwise) instead of
        re-scoring the whole queue.
        """
        if self._index is not None and self._index.policy is self.policy:
            return self._index.best_for_executor(executor_index, now)
        state_view = self.scheduler_view(now)
        best_job: Optional[FillJob] = None
        best_score = -float("inf")
        for job in self.queued_jobs(now):
            view = self.job_view(job)
            if view.proc_times.get(executor_index, float("inf")) == float("inf"):
                continue
            score = self.policy(view, state_view, executor_index)
            if score > best_score:
                best_score = score
                best_job = job
        return best_job, best_score

    def select_job(self, executor_index: int, now: float) -> Optional[FillJob]:
        """Pick the queued job with the highest policy score for this device."""
        return self.select_job_scored(executor_index, now)[0]

    def assign(self, executor_index: int, job: FillJob, now: float) -> float:
        """Assign ``job`` to the executor; returns the scheduled completion time."""
        ex_state = self.executors[executor_index]
        if ex_state.is_busy:
            raise RuntimeError(f"executor {executor_index} is busy")
        if ex_state.is_down:
            raise RuntimeError(f"executor {executor_index} is down")
        record = self.records[job.job_id]
        if record.state is not FillJobState.QUEUED:
            raise RuntimeError(f"job {job.job_id!r} is not queued (state {record.state})")
        estimate = self.estimate_for(job, executor_index)
        if estimate is None:
            raise RuntimeError(f"job {job.job_id!r} does not fit executor {executor_index}")
        proc_time = estimate.processing_time(record.samples_remaining)
        completion = now + proc_time
        self._queue.remove(job.job_id)
        if self._index is not None:
            self._index.remove(job.job_id)
        self._forget_view(job.job_id)
        record.state = FillJobState.RUNNING
        record.assigned_executor = executor_index
        record.start_time = now
        record.flops_executed = record.flops_banked + estimate.flops_for_samples(
            record.samples_remaining
        )
        ex_state.current_job_id = job.job_id
        ex_state.busy_until = completion
        self._state_version += 1
        self._idle.discard(executor_index)
        return completion

    def complete(self, executor_index: int, now: float) -> Optional[str]:
        """Mark the executor's current job as finished; returns its id."""
        ex_state = self.executors[executor_index]
        job_id = ex_state.current_job_id
        if job_id is None:
            return None
        record = self.records[job_id]
        record.state = FillJobState.COMPLETED
        record.completion_time = now
        assert record.start_time is not None
        record.flops_banked = record.flops_executed
        record.busy_banked_seconds += max(0.0, now - record.start_time)
        record.samples_remaining = 0.0
        ex_state.current_job_id = None
        ex_state.busy_until = now
        self._state_version += 1
        self._idle.add(executor_index)
        self._forget_view(job_id)
        self._full_times.pop(job_id, None)  # finished jobs are never re-priced
        return job_id

    def preempt(self, executor_index: int, now: float) -> Optional[str]:
        """Interrupt the executor's running job and re-queue its remainder.

        The interrupted segment's partial progress (FLOPs, samples, busy
        time, pro-rated by elapsed wall-clock) is banked on the job's
        record, ``samples_remaining`` shrinks accordingly, and the job goes
        back to ``QUEUED`` in this scheduler's queue.  Returns the
        preempted job's id, or ``None`` when the executor was idle.
        """
        ex_state = self.executors[executor_index]
        job_id = ex_state.current_job_id
        if job_id is None:
            return None
        record = self.records[job_id]
        assert record.start_time is not None
        segment_duration = ex_state.busy_until - record.start_time
        elapsed = max(0.0, now - record.start_time)
        fraction = (
            1.0
            if segment_duration <= 0
            else min(1.0, elapsed / segment_duration)
        )
        if fraction >= 1.0:
            # Nothing left to preempt: the segment is due; finish it instead.
            return self.complete(executor_index, now)
        segment_flops = record.flops_executed - record.flops_banked
        record.flops_banked += fraction * segment_flops
        record.flops_executed = record.flops_banked
        record.busy_banked_seconds += elapsed
        record.samples_remaining = max(0.0, record.samples_remaining * (1.0 - fraction))
        record.state = FillJobState.QUEUED
        record.assigned_executor = None
        record.start_time = None
        record.num_preemptions += 1
        # Banked progress changed the job's remaining work; the cached view
        # must be rebuilt (and the candidate index re-scored) so re-dispatch
        # prices only the leftover samples.
        self._forget_view(job_id)
        self._queue.append(job_id)
        if self._index is not None:
            self._index.add(record.job)
        ex_state.current_job_id = None
        ex_state.busy_until = now
        self._state_version += 1
        self._idle.add(executor_index)
        return job_id

    def dispatch(self, executor_index: int, now: float) -> Optional[float]:
        """Fill a free executor with the best queued job, if any.

        Returns the scheduled completion time of the newly-assigned job, or
        ``None`` when the executor stays idle.
        """
        ex_state = self.executors[executor_index]
        if not ex_state.is_available:
            return None
        job = self.select_job(executor_index, now)
        if job is None:
            return None
        return self.assign(executor_index, job, now)

    # -- aggregate metrics -----------------------------------------------------------

    def completed_records(self) -> List[JobRecord]:
        """Records of all completed jobs."""
        return [r for r in self.records.values() if r.state is FillJobState.COMPLETED]

    def average_jct(self) -> float:
        """Mean job completion time over completed jobs (0 when none)."""
        completed = self.completed_records()
        if not completed:
            return 0.0
        return sum(r.jct for r in completed if r.jct is not None) / len(completed)

    def makespan(self) -> float:
        """Completion time of the last finished job (0 when none)."""
        completed = self.completed_records()
        if not completed:
            return 0.0
        return max(r.completion_time for r in completed if r.completion_time is not None)

"""The Global (cross-tenant) Fill Job Scheduler.

A production cluster rarely runs a single pipeline-parallel main job:
several training jobs ("tenants") run side by side, each wasting its own
pipeline bubbles, while the organisation maintains one shared backlog of
fill jobs.  :class:`GlobalScheduler` is the routing layer that sits above
one :class:`~repro.core.scheduler.FillJobScheduler` per tenant:

* arriving fill jobs enter a single **global backlog**;
* whenever any tenant's device frees up, the global scheduler scores both
  that tenant's locally re-queued jobs (preemption leftovers) and the
  global backlog with the configured
  :data:`~repro.core.policies.SchedulingPolicy`, and assigns the winner;
* once a job has begun running on a tenant it acquires **affinity** to that
  tenant (its partial progress lives in that tenant's records), so a
  preempted job resumes on the same tenant rather than migrating state;
* with a :data:`~repro.core.policies.PreemptionRule` configured, an urgent
  deadline-constrained arrival may interrupt a running job anywhere in the
  cluster; the victim's progress is banked and its remainder re-queued.

The :class:`~repro.sim.multi_tenant.MultiTenantSimulator` drives this class
event-by-event; it can also be used directly for step-by-step tests.

Job conservation invariant: every submitted job is, at all times, in
exactly one of (a) the global backlog, (b) exactly one tenant's records
(queued / running / completed), or (c) the globally-rejected set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from functools import partial

from repro.core.candidates import CandidateIndex
from repro.core.policies import (
    _EPS as _POLICY_EPS,
    JobView,
    PreemptionRule,
    RunningJobView,
    SchedulingPolicy,
    deadline_preemption_rule,
    sjf_policy,
)
from repro.core.scheduler import FillJob, FillJobScheduler, FillJobState, JobRecord
from repro.utils.faults import FaultTracker
from repro.utils.ordered import OrderedIdSet


@dataclass(frozen=True)
class Assignment:
    """One job placement decided by the global scheduler."""

    tenant: str
    executor_index: int
    job_id: str
    completion_time: float
    preempted_job_id: Optional[str] = None


class GlobalScheduler:
    """Routes a shared fill-job backlog across per-tenant schedulers.

    Parameters
    ----------
    tenants:
        One :class:`~repro.core.scheduler.FillJobScheduler` per tenant,
        keyed by tenant name.  Each tenant scheduler owns the executors of
        that tenant's representative devices.
    policy:
        Scoring policy used both for the global backlog and for jobs
        re-queued locally after preemption.
    preemption_rule:
        Optional rule enabling deadline-driven preemption; ``None``
        disables preemption entirely.
    use_cache:
        When true (the default) backlog job views are memoised per
        (tenant, job) and dispatch sweeps skip executors already proven
        workless; disabling it re-scores everything from scratch on every
        call (the brute-force reference mode for equivalence tests).
    """

    def __init__(
        self,
        tenants: Mapping[str, FillJobScheduler],
        *,
        policy: SchedulingPolicy = sjf_policy,
        preemption_rule: Optional[PreemptionRule] = None,
        use_cache: bool = True,
    ) -> None:
        if not tenants:
            raise ValueError("the global scheduler needs at least one tenant")
        self.tenants: Dict[str, FillJobScheduler] = dict(tenants)
        self.policy = policy
        self.preemption_rule = preemption_rule
        self.use_cache = use_cache
        self.jobs: Dict[str, FillJob] = {}
        self.rejected: Dict[str, FillJob] = {}
        #: Tenant a job is (or was) resident on, once dispatched there.
        self.placements: Dict[str, str] = {}
        #: Tenants that left the cluster (drain or requeue); no new work is
        #: routed to them and their executors go down as they free up.
        self.departed: set = set()
        #: Tenants whose devices have not joined the cluster yet
        #: (:meth:`suspend_tenant`); activation brings them up.
        self.inactive: set = set()
        #: Fault holds per (tenant, executor) -- devices down due to a
        #: *fault*, as opposed to down because their tenant is
        #: inactive/departed.  Overlapping fault windows ref-count (a
        #: permanent fault never releases), and a tenant activation must
        #: not resurrect a held device.
        self._failed = FaultTracker()
        #: Records of jobs evicted from a departed tenant, keyed by job id;
        #: their banked partial progress is restored when the job is placed
        #: on another tenant.
        self._evicted: Dict[str, JobRecord] = {}
        self._backlog = OrderedIdSet()
        # A backlog job's view on a tenant never changes while it waits
        # (proc times depend only on the executors' cycles and the full
        # sample count), so it is computed once per (tenant, job) instead
        # of once per idle executor per dispatch sweep.
        self._view_cache: Dict[Tuple[str, str], JobView] = {}
        # One incremental candidate index per tenant over the shared
        # backlog (scores differ per tenant: processing times depend on
        # the tenant's bubble cycles).  Maintained on submit / placement /
        # eviction; a departed tenant's index is dropped for good.
        self._backlog_indexes: Dict[str, CandidateIndex] = (
            {
                name: CandidateIndex(
                    sched,
                    policy,
                    view_provider=partial(self._backlog_view, name),
                    samples_provider=self._backlog_samples,
                    state_provider=sched.scheduler_view,
                )
                for name, sched in self.tenants.items()
                if sched.use_cache
            }
            if use_cache
            else {}
        )

    # -- submission -------------------------------------------------------------

    def submit(self, job: FillJob) -> bool:
        """Add a job to the global backlog.

        Returns ``False`` (and records the job as rejected) when no
        executor of any tenant can ever run it.  Feasibility short-circuits
        at the first executor anywhere that can run the job.
        """
        if job.job_id in self.jobs:
            raise ValueError(f"job id {job.job_id!r} already submitted")
        self.jobs[job.job_id] = job
        # Departed tenants never take work again, so they cannot make a
        # job feasible; inactive (not-yet-joined) tenants can -- the job
        # waits in the backlog for them.
        for name, sched in self.tenants.items():
            if name in self.departed:
                continue
            if sched.fits_any(job):
                self._backlog.append(job.job_id)
                self._index_add(job)
                return True
        self.rejected[job.job_id] = job
        return False

    def _backlog_samples(self, job: FillJob) -> float:
        """Samples a placement of the backlog job would actually run."""
        carried = self._evicted.get(job.job_id)
        return job.num_samples if carried is None else carried.samples_remaining

    def _index_add(self, job: FillJob) -> None:
        """Index a job that just (re-)entered the backlog on every live
        tenant (a departed tenant's index was dropped at deactivation;
        each index skips classes infeasible on its tenant)."""
        for index in self._backlog_indexes.values():
            index.add(job)

    def _index_remove(self, job_id: str) -> None:
        for index in self._backlog_indexes.values():
            index.remove(job_id)

    def backlog_jobs(self, now: Optional[float] = None) -> List[FillJob]:
        """Jobs waiting in the global backlog (arrived by ``now`` if given)."""
        jobs = [self.jobs[jid] for jid in self._backlog]
        if now is not None:
            jobs = [j for j in jobs if j.arrival_time <= now]
        return jobs

    # -- dispatch ---------------------------------------------------------------

    def _backlog_view(self, tenant: str, job: FillJob) -> JobView:
        key = (tenant, job.job_id)
        view = self._view_cache.get(key)
        if view is None:
            # A job evicted from a departed tenant carries banked progress;
            # policies must score its *remaining* work, which is what a
            # later assign() will actually run.  (Safe to cache: the
            # parked record never changes while the job waits, and its
            # views were dropped when the job last left the backlog.)
            carried = self._evicted.get(job.job_id)
            remaining = None if carried is None else carried.samples_remaining
            view = JobView(
                job_id=job.job_id,
                arrival_time=job.arrival_time,
                proc_times=self.tenants[tenant].processing_times(
                    job, num_samples=remaining
                ),
                deadline=job.deadline,
            )
            if self.use_cache:
                self._view_cache[key] = view
        return view

    def _forget_backlog_views(self, job_id: str, *, keep_tenant: Optional[str] = None) -> None:
        """Drop a placed job's cached backlog views.

        The tenant the job was placed on keeps its full-sample times memo
        (deadline checks still consult it); every other tenant will never
        see the job again, so their memos are dropped too.
        """
        for tenant, sched in self.tenants.items():
            self._view_cache.pop((tenant, job_id), None)
            if tenant != keep_tenant:
                sched.forget_job(job_id)

    def _best_backlog_job(
        self, tenant: str, executor_index: int, now: float
    ) -> Tuple[Optional[FillJob], float]:
        """Highest-scoring backlog job runnable on this tenant executor.

        On the cached path the tenant's candidate index answers without
        re-scoring the backlog (see :mod:`repro.core.candidates`).
        """
        index = self._backlog_indexes.get(tenant)
        if index is not None and index.policy is self.policy:
            return index.best_for_executor(executor_index, now)
        sched = self.tenants[tenant]
        state_view = sched.scheduler_view(now)
        best_job: Optional[FillJob] = None
        best_score = -float("inf")
        for job in self.backlog_jobs(now):
            view = self._backlog_view(tenant, job)
            if view.proc_times.get(executor_index, float("inf")) == float("inf"):
                continue
            score = self.policy(view, state_view, executor_index)
            if score > best_score:
                best_score = score
                best_job = job
        return best_job, best_score

    def _best_local_job(
        self, tenant: str, executor_index: int, now: float
    ) -> Tuple[Optional[FillJob], float]:
        """Highest-scoring locally re-queued job on this tenant executor.

        Note: the tenant scheduler scores with *its own* policy, which the
        global scheduler constructs with the same policy as its backlog
        scoring, so local and global scores are comparable.
        """
        return self.tenants[tenant].select_job_scored(executor_index, now)

    def dispatch(
        self, tenant: str, executor_index: int, now: float
    ) -> Optional[Assignment]:
        """Fill one idle tenant executor with the best available job.

        Considers both the tenant's local queue (preemption leftovers,
        which have affinity here) and the global backlog; the policy score
        decides between them.  Returns the resulting
        :class:`Assignment`, or ``None`` when the executor stays idle.
        """
        sched = self.tenants[tenant]
        if not sched.executors[executor_index].is_available:
            return None
        local_job, local_score = self._best_local_job(tenant, executor_index, now)
        backlog_job, backlog_score = self._best_backlog_job(tenant, executor_index, now)
        if local_job is None and backlog_job is None:
            return None
        if backlog_job is not None and (local_job is None or backlog_score > local_score):
            self._place(tenant, backlog_job)
            completion = sched.assign(executor_index, backlog_job, now)
            return Assignment(tenant, executor_index, backlog_job.job_id, completion)
        assert local_job is not None
        completion = sched.assign(executor_index, local_job, now)
        return Assignment(tenant, executor_index, local_job.job_id, completion)

    def _place(self, tenant: str, job: FillJob) -> None:
        """Move a backlog job into a tenant's scheduler (pre-assignment).

        Restores any partial progress the job banked on a tenant that has
        since departed, so a migrated job resumes with only its remaining
        samples rather than restarting.
        """
        self._backlog.remove(job.job_id)
        self._index_remove(job.job_id)
        self._forget_backlog_views(job.job_id, keep_tenant=tenant)
        self.placements[job.job_id] = tenant
        self.tenants[tenant].submit(job)
        carried = self._evicted.pop(job.job_id, None)
        if carried is not None:
            self.tenants[tenant].restore_progress(job.job_id, carried)

    def dispatch_idle(self, now: float) -> List[Assignment]:
        """Dispatch onto every idle executor of every tenant until stable.

        Iterates only currently-idle executors, and marks executors that
        found no runnable job as *exhausted* for the remainder of the
        sweep: within one sweep jobs only ever leave the backlog and the
        tenant queues, so a workless executor cannot gain work until the
        next event.  Both prunings leave the assignment sequence (and hence
        the simulation results) unchanged.
        """
        assignments: List[Assignment] = []
        use_fast_path = self.use_cache
        exhausted: set = set()
        progress = True
        while progress:
            progress = False
            for tenant, sched in self.tenants.items():
                if use_fast_path and not self._backlog and not sched.has_queued_jobs():
                    continue
                indices = (
                    sched.idle_executor_indices()
                    if use_fast_path
                    else [i for i, s in sched.executors.items() if s.is_available]
                )
                for idx in indices:
                    if (tenant, idx) in exhausted:
                        continue
                    assignment = self.dispatch(tenant, idx, now)
                    if assignment is not None:
                        assignments.append(assignment)
                        progress = True
                        if (
                            use_fast_path
                            and not self._backlog
                            and not sched.has_queued_jobs()
                        ):
                            # The assignment drained the last waiting job:
                            # every remaining idle executor would scan to
                            # no candidate, so skip them outright (jobs
                            # only leave queues within a sweep).
                            break
                    elif use_fast_path:
                        exhausted.add((tenant, idx))
        return assignments

    # -- preemption -------------------------------------------------------------

    def idle_can_meet_deadline(self, job_id: str, now: float) -> bool:
        """Whether some currently-idle executor meets the job's deadline.

        Used by the simulator to decide, on arrival of a deadline job,
        whether plain dispatch suffices or preemption should be attempted
        first (an idle-but-slow executor can be worse than preempting a
        fast one).  Jobs without a deadline trivially return ``True``.
        """
        job = self.jobs[job_id]
        if job.deadline is None:
            return True
        for tenant, sched in self.tenants.items():
            # Only available devices can rescue the arrival, so consult
            # the idle set first and skip (cheaply) tenants running full.
            idle = sched.idle_executor_indices()
            if not idle:
                continue
            # The cached backlog view holds exactly the full-sample
            # processing times this check needs.
            times = self._backlog_view(tenant, job).proc_times
            for idx in idle:
                proc = times.get(idx, float("inf"))
                if proc != float("inf") and now + proc <= job.deadline:
                    return True
        return False

    def try_preempt(self, job_id: str, now: float) -> Optional[Assignment]:
        """Try to start an urgent backlog job by preempting a running one.

        Evaluates the configured preemption rule for every (tenant,
        executor) pair currently running a job the arrival could replace,
        preempts the highest-scoring victim, and assigns the arrival there.
        Returns the assignment (with ``preempted_job_id`` set), or ``None``
        when preemption is disabled or no victim qualifies.
        """
        if self.preemption_rule is None:
            return None
        if job_id not in self._backlog:
            return None
        job = self.jobs[job_id]
        if job.deadline is None:
            return None
        best: Optional[Tuple[float, str, int]] = None
        # The shipped deadline rule rejects almost every (arrival, victim)
        # pair on arithmetic over numbers already at hand; inlining those
        # zero-score exits (identical expressions, identical order) skips
        # the RunningJobView construction and the rule call for them.
        fast_rule = self.preemption_rule is deadline_preemption_rule
        inf = float("inf")
        for tenant, sched in self.tenants.items():
            if tenant in self.departed:
                continue  # a leaving tenant takes no new work
            state_view = None if fast_rule else sched.scheduler_view(now)
            view = self._backlog_view(tenant, job)
            proc_times = view.proc_times
            for idx, ex_state in sched.executors.items():
                if not ex_state.is_busy:
                    continue
                proc_here = proc_times.get(idx, inf)
                if proc_here == inf:
                    continue
                if fast_rule:
                    wait = max(0.0, ex_state.busy_until - now)
                    if now + wait + proc_here <= job.deadline:
                        continue  # waiting out the segment still meets it
                    if now + proc_here > job.deadline:
                        continue  # preempting would not save it either
                    victim = sched.records[ex_state.current_job_id]
                    victim_deadline = victim.job.deadline
                    if victim_deadline is not None:
                        victim_slack = victim_deadline - now - wait
                        arrival_slack = job.deadline - now - proc_here
                        if victim_slack - proc_here <= max(arrival_slack, 0.0):
                            continue
                    assert victim.start_time is not None
                    total = ex_state.busy_until - victim.start_time
                    progress = (
                        1.0
                        if total <= 0
                        else min(1.0, max(0.0, (now - victim.start_time) / total))
                    )
                    score = wait * (1.0 - progress) + _POLICY_EPS
                else:
                    victim = sched.records[ex_state.current_job_id]
                    assert victim.start_time is not None
                    running_view = RunningJobView(
                        job_id=victim.job.job_id,
                        start_time=victim.start_time,
                        scheduled_end=ex_state.busy_until,
                        executor_index=idx,
                        deadline=victim.job.deadline,
                    )
                    score = self.preemption_rule(view, running_view, state_view)
                if score > 0 and (best is None or score > best[0]):
                    best = (score, tenant, idx)
        if best is None:
            return None
        _, tenant, idx = best
        sched = self.tenants[tenant]
        preempted = sched.preempt(idx, now)
        self._place(tenant, job)
        completion = sched.assign(idx, job, now)
        return Assignment(tenant, idx, job_id, completion, preempted_job_id=preempted)

    # -- cluster dynamics (failures, elastic tenants) ------------------------------

    def fail_executor(self, tenant: str, executor_index: int, now: float) -> Optional[str]:
        """One tenant device fails: requeue its running job, stop routing there.

        The interrupted job keeps its affinity (its banked progress lives
        in the tenant's records) and resumes on another of the tenant's
        devices -- or on this one after :meth:`recover_executor`.  On a
        tenant that already left (a fault racing a drain), the job is
        instead evicted to the global backlog: nothing dispatches to a
        departed tenant's local queue anymore.  Returns the interrupted
        job's id, if any.
        """
        self._failed.fail((tenant, executor_index))
        job_id = self.tenants[tenant].on_executor_lost(executor_index, now)
        if tenant in self.departed:
            self._evict_queued_jobs(tenant)
        return job_id

    def recover_executor(self, tenant: str, executor_index: int) -> None:
        """One fault on a tenant device clears; the device may come back.

        With overlapping fault windows the device re-enters dispatch
        rotation only when its *last* outstanding fault recovers, and even
        then only if its tenant is present: a tenant that left stays down
        for good, and one that has not joined yet comes up as a whole at
        :meth:`activate_tenant`.
        """
        if not self._failed.recover((tenant, executor_index)):
            return  # an earlier, longer fault still holds the device down
        if tenant in self.departed or tenant in self.inactive:
            return
        self.tenants[tenant].on_executor_recovered(executor_index)

    def suspend_tenant(self, tenant: str) -> None:
        """Mark a tenant's devices as absent until :meth:`activate_tenant`.

        Used for tenants whose ``join_at`` lies in the future; no fill
        work is routed to them and fault recoveries on them stay down.
        """
        sched = self.tenants[tenant]
        self.inactive.add(tenant)
        for idx, state in sched.executors.items():
            if not state.is_down:
                sched.set_down(idx)

    def activate_tenant(self, tenant: str) -> None:
        """Bring a (late-joining) tenant's devices into rotation.

        Devices that failed *before* the join (and have not recovered)
        stay down until their :meth:`recover_executor` fires.
        """
        sched = self.tenants[tenant]
        self.inactive.discard(tenant)
        for idx in sched.executors:
            if not self._failed.is_held((tenant, idx)):
                sched.on_executor_recovered(idx)

    def deactivate_tenant(self, tenant: str, now: float, *, requeue: bool = False) -> List[str]:
        """The tenant leaves the cluster at ``now``; returns evicted job ids.

        Two leave modes:

        * **drain** (``requeue=False``): running jobs finish normally and
          each device goes down as it frees up; nothing new is routed to
          the tenant.
        * **requeue** (``requeue=True``): running jobs are interrupted with
          their partial progress banked
          (:meth:`~repro.core.scheduler.FillJobScheduler.on_executor_lost`)
          and every device goes down immediately.

        In both modes the tenant's *queued* jobs (preemption/failure
        leftovers plus the just-interrupted ones) are evicted back to the
        global backlog, carrying their banked progress, so they can resume
        on the remaining tenants instead of stranding.  Completed and
        rejected records stay with the tenant for accounting.
        """
        sched = self.tenants[tenant]
        self.departed.add(tenant)
        # No work is ever routed to a departed tenant again; its backlog
        # candidate index is dead weight from here on.
        self._backlog_indexes.pop(tenant, None)
        for idx, state in sched.executors.items():
            if state.is_busy:
                if requeue:
                    sched.on_executor_lost(idx, now)
                # drain: the job finishes; complete() takes the device down.
            elif not state.is_down:
                sched.set_down(idx)
        return self._evict_queued_jobs(tenant)

    def _evict_queued_jobs(self, tenant: str) -> List[str]:
        """Move every locally-queued job of a tenant back to the backlog.

        Records (with banked progress) park in ``_evicted`` until the job
        is placed again; :meth:`_place` restores them.
        """
        sched = self.tenants[tenant]
        evicted: List[str] = []
        for job in list(sched.queued_jobs()):
            record = sched.evict_queued(job.job_id)
            self._evicted[job.job_id] = record
            self.placements.pop(job.job_id, None)
            self._backlog.append(job.job_id)
            self._index_add(job)
            evicted.append(job.job_id)
        return evicted

    # -- completion -------------------------------------------------------------

    def complete(self, tenant: str, executor_index: int, now: float) -> Optional[str]:
        """Mark the tenant executor's running job as finished.

        On a departed (draining) tenant the freed device immediately goes
        down instead of re-entering dispatch rotation.
        """
        job_id = self.tenants[tenant].complete(executor_index, now)
        if tenant in self.departed:
            self.tenants[tenant].set_down(executor_index)
        return job_id

    # -- accounting -------------------------------------------------------------

    def job_states(self) -> Dict[str, FillJobState]:
        """The current lifecycle state of every submitted job.

        Backlog jobs report ``QUEUED``; globally-rejected jobs report
        ``REJECTED``; everything else reports its tenant record's state.
        Useful for conservation checks: the returned mapping always has
        exactly one entry per submitted job.
        """
        states: Dict[str, FillJobState] = {}
        for jid in self._backlog:
            states[jid] = FillJobState.QUEUED
        for jid in self.rejected:
            states[jid] = FillJobState.REJECTED
        for tenant, sched in self.tenants.items():
            for jid, record in sched.records.items():
                if jid in states:
                    raise RuntimeError(
                        f"job {jid!r} double-booked (tenant {tenant!r} and elsewhere)"
                    )
                states[jid] = record.state
        return states

    def tenant_of(self, job_id: str) -> Optional[str]:
        """Tenant a job was placed on (``None`` while still in the backlog)."""
        return self.placements.get(job_id)

    def evicted_records(self) -> List[JobRecord]:
        """Parked records of evicted jobs not re-placed yet.

        These carry banked progress that belongs to no tenant's records
        anymore (their tenant departed); result collection must account
        for it so work physically executed before the eviction is not
        lost from aggregate metrics.
        """
        return list(self._evicted.values())

    def migrated_progress(self) -> Tuple[float, float, float]:
        """``(flops, samples, busy_seconds)`` imported by migrated jobs.

        Sums the ``*_imported`` markers over every live tenant record:
        progress that was banked on a since-departed tenant's devices by
        jobs later re-placed elsewhere.  Per-tenant metrics exclude those
        shares (the new host's devices never supplied them), so result
        collection adds this exactly once to the aggregate.  Progress
        still parked in ``_evicted`` is *not* included -- those records
        are accounted through :meth:`evicted_records`.
        """
        flops = samples = busy = 0.0
        for sched in self.tenants.values():
            for record in sched.records.values():
                flops += record.flops_imported
                samples += record.samples_imported
                busy += record.busy_imported_seconds
        return flops, samples, busy

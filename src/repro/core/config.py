"""PipeFill system configuration and the main-job interference model.

The paper's physical experiments (Figure 5) show that the executor can fill
up to ~68% of each bubble's duration with <2% slowdown of the main training
job; beyond that, context-switch overrun and interference grow quickly.
:class:`PipeFillConfig` collects that fill fraction and the other knobs of
the system; :func:`main_job_overhead_fraction` is the calibrated
interference model used when experiments sweep the fill fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_fraction, check_non_negative


@dataclass(frozen=True)
class PipeFillConfig:
    """Tunables of the PipeFill runtime.

    Parameters
    ----------
    fill_fraction:
        Fraction of each bubble's duration the executor plans work into.
        The default (0.68) is the operating point the paper identifies as
        the largest fill that keeps main-job slowdown below 2%.
    memory_safety_fraction:
        Fraction of the measured bubble free memory the executor allows the
        fill job to use (Section 4.2: "to ensure there are no out-of-memory
        errors PipeFill may opt only to allocate some fraction of the free
        memory").
    context_switch_seconds:
        Fixed cost per bubble entry: signalling the executor process,
        releasing cached blocks and re-priming streams.  Subtracted from the
        usable bubble duration.
    min_fill_bubble_seconds:
        Bubbles shorter than this are not worth switching into and are left
        idle (1F1B's non-contiguous gaps fall below it).
    offload_main_job:
        Whether the engine offloads the main job's optimizer states to host
        memory to enlarge the bubbles' free memory.
    """

    fill_fraction: float = 0.68
    memory_safety_fraction: float = 0.90
    context_switch_seconds: float = 0.015
    min_fill_bubble_seconds: float = 0.050
    offload_main_job: bool = False

    def __post_init__(self) -> None:
        check_fraction(self.fill_fraction, "fill_fraction")
        check_fraction(self.memory_safety_fraction, "memory_safety_fraction")
        check_non_negative(self.context_switch_seconds, "context_switch_seconds")
        check_non_negative(self.min_fill_bubble_seconds, "min_fill_bubble_seconds")

    def with_fill_fraction(self, fill_fraction: float) -> "PipeFillConfig":
        """Return a copy with a different fill fraction (Figure 5 sweep)."""
        return replace(self, fill_fraction=fill_fraction)

    def usable_bubble_seconds(self, bubble_duration: float) -> float:
        """Seconds of a bubble the executor may plan work into."""
        if bubble_duration < self.min_fill_bubble_seconds:
            return 0.0
        usable = self.fill_fraction * bubble_duration - self.context_switch_seconds
        return max(0.0, usable)

    def usable_bubble_memory(self, free_memory_bytes: float) -> float:
        """Bytes of a bubble's free memory the fill job may allocate."""
        return self.memory_safety_fraction * free_memory_bytes


#: Fill fraction below which interference with the main job is negligible.
SAFE_FILL_FRACTION = 0.68

#: Quadratic growth rate of main-job overhead past the safe fill fraction.
#: Calibrated so filling 100% of each bubble costs the main job roughly 15%
#: (Figure 5 shows overhead rising steeply once the executor plans work into
#: the tail of the bubble where prediction error causes overruns).
_OVERHEAD_QUADRATIC_GAIN = 1.5

#: Residual interference (cache/DRAM pressure) even at low fill fractions.
_BASE_OVERHEAD = 0.004


def main_job_overhead_fraction(fill_fraction: float, *, safe_fraction: float = SAFE_FILL_FRACTION) -> float:
    """Relative main-job slowdown caused by filling ``fill_fraction`` of bubbles.

    Below ``safe_fraction`` the overhead stays under ~1%; beyond it the
    executor increasingly overruns bubble boundaries (the planned work is
    based on profiled durations that do not account for warm-up variance),
    and the overhead grows quadratically, reaching ~15% at 100% fill.
    """
    check_fraction(fill_fraction, "fill_fraction")
    check_fraction(safe_fraction, "safe_fraction")
    overshoot = max(0.0, fill_fraction - safe_fraction)
    return _BASE_OVERHEAD * (fill_fraction / max(safe_fraction, 1e-9)) + _OVERHEAD_QUADRATIC_GAIN * overshoot**2

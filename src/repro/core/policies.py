"""Fill-job scheduling policies.

The Fill Job Scheduler exposes its policy as a scoring function
``f(job, state, executor_index) -> score`` (Section 4.4): whenever a device
finishes a fill job, the scheduler submits the queued job with the highest
score for that device.  This module provides the policies evaluated in the
paper (Shortest-Job-First and Makespan-Minimizing), plus FIFO,
Earliest-Deadline-First and weighted composition for hierarchical policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.utils.validation import check_non_negative

_EPS = 1e-12


@dataclass(frozen=True)
class JobView:
    """The job information a policy may inspect.

    ``proc_times`` maps executor index to the job's predicted processing
    time on that executor (infinite when the job does not fit there).
    """

    job_id: str
    arrival_time: float
    proc_times: Mapping[int, float]
    deadline: Optional[float] = None

    @property
    def min_proc_time(self) -> float:
        """Fastest predicted processing time across all executors."""
        finite = [t for t in self.proc_times.values() if t != float("inf")]
        return min(finite) if finite else float("inf")


@dataclass(frozen=True)
class SchedulerView:
    """The scheduler state a policy may inspect."""

    now: float
    rem_times: Mapping[int, float] = field(default_factory=dict)

    @property
    def max_rem_time(self) -> float:
        """Longest remaining busy time across all executors."""
        return max(self.rem_times.values(), default=0.0)


#: A scheduling policy: higher score wins.
SchedulingPolicy = Callable[[JobView, SchedulerView, int], float]


def fifo_policy(job: JobView, state: SchedulerView, executor_index: int) -> float:
    """First-in-first-out: the job that has waited longest wins."""
    return state.now - job.arrival_time


def sjf_policy(job: JobView, state: SchedulerView, executor_index: int) -> float:
    """Shortest-Job-First: ``1 / min(proc_times)`` (the paper's example)."""
    return 1.0 / (job.min_proc_time + _EPS)


def makespan_policy(job: JobView, state: SchedulerView, executor_index: int) -> float:
    """Makespan-minimizing: ``1 / max(proc_times[i], rem_times)``.

    Prefers the assignment that keeps the maximum busy time across all
    executors as small as possible (the paper's second example policy).
    """
    proc_here = job.proc_times.get(executor_index, float("inf"))
    return 1.0 / (max(proc_here, state.max_rem_time) + _EPS)


def edf_policy(job: JobView, state: SchedulerView, executor_index: int) -> float:
    """Earliest-Deadline-First: jobs closer to their deadline score higher.

    Jobs without a deadline score 0, so EDF is typically composed with a
    fallback policy (see :func:`compose_policies`).
    """
    if job.deadline is None:
        return 0.0
    slack = job.deadline - state.now
    return 1.0 / (max(slack, 0.0) + _EPS)


def compose_policies(
    *weighted: Tuple[float, SchedulingPolicy],
) -> SchedulingPolicy:
    """Build a hierarchical policy as a weighted sum of sub-policies.

    Example: prioritise proximity-to-deadline but fall back to SJF when no
    job has a deadline::

        policy = compose_policies((10.0, edf_policy), (1.0, sjf_policy))
    """
    if not weighted:
        raise ValueError("compose_policies needs at least one (weight, policy) pair")
    for weight, _ in weighted:
        check_non_negative(weight, "policy weight")

    def composed(job: JobView, state: SchedulerView, executor_index: int) -> float:
        return sum(w * policy(job, state, executor_index) for w, policy in weighted)

    return composed


#: Registry of named policies usable from experiment configuration.
POLICIES: Dict[str, SchedulingPolicy] = {
    "fifo": fifo_policy,
    "sjf": sjf_policy,
    "makespan": makespan_policy,
    "edf": edf_policy,
    "edf+sjf": compose_policies((1_000.0, edf_policy), (1.0, sjf_policy)),
}


def get_policy(name: str) -> SchedulingPolicy:
    """Look up a policy by name."""
    try:
        return POLICIES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(POLICIES)}") from None

"""Fill-job scheduling and preemption policies.

The Fill Job Scheduler exposes its policy as a scoring function
``f(job, state, executor_index) -> score`` (Section 4.4): whenever a device
finishes a fill job, the scheduler submits the queued job with the highest
score for that device.  This module provides the policies evaluated in the
paper (Shortest-Job-First and Makespan-Minimizing), plus FIFO,
Earliest-Deadline-First, Least-Slack-First and weighted composition for
hierarchical policies.

For multi-tenant clusters the module also defines *preemption rules*: a
rule ``f(arriving, running, state) -> score`` inspects an arriving
deadline-constrained job and one running job and returns a positive score
when interrupting the running job to start the arrival is worthwhile
(see :class:`~repro.core.global_scheduler.GlobalScheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Mapping, Optional, Sequence, Tuple

from repro import registry
from repro.utils.validation import check_non_negative

_EPS = 1e-12


@dataclass(frozen=True)
class JobView:
    """The job information a policy may inspect.

    ``proc_times`` maps executor index to the job's predicted processing
    time on that executor (infinite when the job does not fit there).
    """

    job_id: str
    arrival_time: float
    proc_times: Mapping[int, float]
    deadline: Optional[float] = None

    @cached_property
    def min_proc_time(self) -> float:
        """Fastest predicted processing time across all executors.

        Cached on the (frozen, immutable) view: policies consult it once
        per scored (job, executor) pair, and schedulers reuse views across
        whole dispatch sweeps.
        """
        finite = [t for t in self.proc_times.values() if t != float("inf")]
        return min(finite) if finite else float("inf")


@dataclass(frozen=True)
class SchedulerView:
    """The scheduler state a policy may inspect."""

    now: float
    rem_times: Mapping[int, float] = field(default_factory=dict)

    @property
    def max_rem_time(self) -> float:
        """Longest remaining busy time across all executors."""
        return max(self.rem_times.values(), default=0.0)


#: A scheduling policy: higher score wins.
SchedulingPolicy = Callable[[JobView, SchedulerView, int], float]


def fifo_policy(job: JobView, state: SchedulerView, executor_index: int) -> float:
    """First-in-first-out: the job that has waited longest wins."""
    return state.now - job.arrival_time


def sjf_policy(job: JobView, state: SchedulerView, executor_index: int) -> float:
    """Shortest-Job-First: ``1 / min(proc_times)`` (the paper's example)."""
    return 1.0 / (job.min_proc_time + _EPS)


# Scan/index metadata (consumed by repro.core.candidates):
#
# ``scan_kind`` names the closed-form shape of a shipped primitive so the
# candidate index can evaluate it in a flat loop with *bit-identical*
# arithmetic; ``static_score`` marks a policy whose score for a fixed
# JobView depends on neither ``now``, ``rem_times`` nor the executor
# index, which is what allows keeping candidates in a score-ordered heap
# between events.  Policies without either attribute still work -- the
# index falls back to calling them per candidate.
sjf_policy.static_score = True  # type: ignore[attr-defined]
sjf_policy.scan_kind = "sjf"  # type: ignore[attr-defined]
fifo_policy.scan_kind = "fifo"  # type: ignore[attr-defined]


def makespan_policy(job: JobView, state: SchedulerView, executor_index: int) -> float:
    """Makespan-minimizing: ``1 / max(proc_times[i], rem_times)``.

    Prefers the assignment that keeps the maximum busy time across all
    executors as small as possible (the paper's second example policy).
    """
    proc_here = job.proc_times.get(executor_index, float("inf"))
    return 1.0 / (max(proc_here, state.max_rem_time) + _EPS)


def edf_policy(job: JobView, state: SchedulerView, executor_index: int) -> float:
    """Earliest-Deadline-First: jobs closer to their deadline score higher.

    Jobs without a deadline score 0, so EDF is typically composed with a
    fallback policy (see :func:`compose_policies`).
    """
    if job.deadline is None:
        return 0.0
    slack = job.deadline - state.now
    return 1.0 / (max(slack, 0.0) + _EPS)


def slack_policy(job: JobView, state: SchedulerView, executor_index: int) -> float:
    """Least-Slack-First: prioritise the job closest to missing its deadline.

    Slack is ``deadline - now - processing_time_here``; unlike plain EDF
    this accounts for how long the job still needs to run, so a long job
    with a far deadline can outrank a short job with a nearer one.  Jobs
    without a deadline score 0 (compose with a fallback policy).
    """
    if job.deadline is None:
        return 0.0
    proc_here = job.proc_times.get(executor_index, float("inf"))
    if proc_here == float("inf"):
        proc_here = job.min_proc_time
    slack = job.deadline - state.now - proc_here
    return 1.0 / (max(slack, 0.0) + _EPS)


edf_policy.scan_kind = "edf"  # type: ignore[attr-defined]
slack_policy.scan_kind = "slack"  # type: ignore[attr-defined]
makespan_policy.scan_kind = "makespan"  # type: ignore[attr-defined]


class ComposedPolicy:
    """A hierarchical policy: the weighted sum of sub-policies.

    Callable exactly like a plain policy function.  The ``parts`` tuple is
    exposed so the candidate index (:mod:`repro.core.candidates`) can
    recognise shipped compositions such as ``slack+sjf`` and evaluate them
    in a flat scan loop with bit-identical arithmetic; the accumulation
    order here (left to right, starting from ``0.0``) is therefore part of
    the contract.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: Tuple[Tuple[float, SchedulingPolicy], ...]) -> None:
        self.parts = parts

    def __call__(self, job: JobView, state: SchedulerView, executor_index: int) -> float:
        return sum(w * policy(job, state, executor_index) for w, policy in self.parts)


def compose_policies(
    *weighted: Tuple[float, SchedulingPolicy],
) -> SchedulingPolicy:
    """Build a hierarchical policy as a weighted sum of sub-policies.

    Example: prioritise proximity-to-deadline but fall back to SJF when no
    job has a deadline::

        policy = compose_policies((10.0, edf_policy), (1.0, sjf_policy))
    """
    if not weighted:
        raise ValueError("compose_policies needs at least one (weight, policy) pair")
    for weight, _ in weighted:
        check_non_negative(weight, "policy weight")
    return ComposedPolicy(tuple(weighted))


registry.register_policy("fifo", fifo_policy)
registry.register_policy("sjf", sjf_policy)
registry.register_policy("makespan", makespan_policy)
registry.register_policy("edf", edf_policy)
registry.register_policy(
    "edf+sjf", compose_policies((1_000.0, edf_policy), (1.0, sjf_policy))
)
registry.register_policy("slack", slack_policy)
registry.register_policy(
    "slack+sjf", compose_policies((1_000.0, slack_policy), (1.0, sjf_policy))
)

#: Live view of the named policies usable from experiment configuration.
#: The single source of truth is :data:`repro.registry.policies`; register
#: new entries with ``@repro.registry.register_policy("name")``.
POLICIES: Mapping[str, SchedulingPolicy] = registry.policies.view()


def get_policy(name: str) -> SchedulingPolicy:
    """Look up a policy by name (shipped or plugin-registered)."""
    return registry.policies.get(name)


# -- preemption -------------------------------------------------------------------


@dataclass(frozen=True)
class RunningJobView:
    """The information a preemption rule may inspect about a running job."""

    job_id: str
    start_time: float
    scheduled_end: float
    executor_index: int = 0
    deadline: Optional[float] = None

    def remaining_time(self, now: float) -> float:
        """Seconds of the current run segment still ahead."""
        return max(0.0, self.scheduled_end - now)

    def progress(self, now: float) -> float:
        """Fraction of the current run segment already executed."""
        total = self.scheduled_end - self.start_time
        if total <= 0:
            return 1.0
        return min(1.0, max(0.0, (now - self.start_time) / total))


#: A preemption rule: given an arriving job, a running job and the scheduler
#: state, return a score; positive means "preempt the running job in favour
#: of the arrival", and among candidates the highest score wins.
PreemptionRule = Callable[[JobView, RunningJobView, SchedulerView], float]


def deadline_preemption_rule(
    arriving: JobView, running: RunningJobView, state: SchedulerView
) -> float:
    """Preempt deadline-free (or slack-rich) work for an urgent arrival.

    The arrival must carry a deadline that waiting for the running segment
    would miss; the victim must either have no deadline or keep enough
    slack to absorb being re-queued.  The score favours victims with the
    most remaining run time (they block the device longest) and the least
    progress (the least work is thrown away).
    """
    if arriving.deadline is None:
        return 0.0
    # Price the arrival on the executor it would actually take over.
    proc_here = arriving.proc_times.get(running.executor_index, float("inf"))
    if proc_here == float("inf"):
        return 0.0
    wait = running.remaining_time(state.now)
    # Waiting out the running segment still meets the deadline: no need.
    if state.now + wait + proc_here <= arriving.deadline:
        return 0.0
    # Preempting would not save the arrival either.
    if state.now + proc_here > arriving.deadline:
        return 0.0
    if running.deadline is not None:
        victim_slack = running.deadline - state.now - wait
        arrival_slack = arriving.deadline - state.now - proc_here
        # The victim resumes only after the arrival runs, so it must keep
        # enough slack to absorb that re-queue delay -- and still be less
        # urgent than the arrival.  Preempting a victim this would push
        # past its own deadline just trades one miss for another.
        if victim_slack - proc_here <= max(arrival_slack, 0.0):
            return 0.0
    return wait * (1.0 - running.progress(state.now)) + _EPS


registry.register_preemption_rule("deadline", deadline_preemption_rule)

#: Live view of the named preemption rules usable from scenario specs
#: (source of truth: :data:`repro.registry.preemption_rules`).
PREEMPTION_RULES: Mapping[str, PreemptionRule] = registry.preemption_rules.view()


def get_preemption_rule(name: str) -> PreemptionRule:
    """Look up a preemption rule by name (shipped or plugin-registered)."""
    return registry.preemption_rules.get(name)

"""Main-job offloading: move optimizer states to host memory to grow bubbles.

Section 4.2 of the paper: PipeFill can offload the main job's optimizer
states (the Adam moment estimates and fp32 master weights) to CPU memory,
because that data is only needed during the optimizer update.  The
offloading is overlapped with the forward-pass execution and the onloading
with the gradient synchronisation, so the main job is never blocked.  The
freed device memory is added to the bubbles' free-memory capacity.

:func:`plan_optimizer_offload` checks both overlap constraints against the
stage cost model and host-memory availability, and reports how many extra
bytes each bubble gains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.node import NodeSpec, P3_16XLARGE
from repro.models.memory import ADAM_OPTIMIZER_BYTES_PER_PARAM
from repro.pipeline.costs import StageCostModel
from repro.pipeline.parallelism import ParallelConfig
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class OffloadPlan:
    """Outcome of planning main-job optimizer-state offloading for one stage."""

    offloadable_bytes: float
    offloaded_bytes: float
    offload_time: float
    onload_time: float
    forward_window: float
    sync_window: float
    host_bytes_required: float

    @property
    def is_full(self) -> bool:
        """True when the entire optimizer state can be offloaded."""
        return self.offloaded_bytes >= self.offloadable_bytes - 1e-6

    @property
    def extra_free_memory_bytes(self) -> float:
        """Device bytes the bubbles gain from the offload."""
        return self.offloaded_bytes


def plan_optimizer_offload(
    stage: StageCostModel,
    parallel: ParallelConfig,
    *,
    node: NodeSpec = P3_16XLARGE,
    overlap_utilisation: float = 0.8,
) -> OffloadPlan:
    """Plan how much of a stage's optimizer state can be offloaded transparently.

    Parameters
    ----------
    stage:
        The stage's resolved cost model (provides the per-microbatch forward
        time and the gradient-synchronisation time the transfers overlap with).
    parallel:
        The main job's parallel configuration (provides microbatch count).
    node:
        Node spec; provides the host link bandwidth and host memory size.
    overlap_utilisation:
        Fraction of the overlap windows usable for transfers (transfers
        share PCIe with other traffic, so full utilisation is optimistic).
    """
    check_fraction(overlap_utilisation, "overlap_utilisation")
    optimizer_bytes = stage.params_per_device * ADAM_OPTIMIZER_BYTES_PER_PARAM

    # Offload window: the forward passes of one iteration (the optimizer
    # state is not needed until the update at the iteration's end).
    forward_window = parallel.num_microbatches * stage.t_forward * overlap_utilisation
    # Onload window: the gradient synchronisation plus the backward drain.
    sync_window = (
        stage.t_grad_reduce + parallel.num_microbatches * 0.25 * stage.t_backward
    ) * overlap_utilisation

    link = node.host_link
    offload_capacity = forward_window * link.effective_bandwidth
    onload_capacity = sync_window * link.effective_bandwidth
    transferable = min(offload_capacity, onload_capacity)

    host_free = node.host_memory_bytes / node.devices_per_node
    offloaded = min(optimizer_bytes, transferable, host_free)

    offload_time = offloaded / link.effective_bandwidth if offloaded > 0 else 0.0
    onload_time = offload_time
    return OffloadPlan(
        offloadable_bytes=optimizer_bytes,
        offloaded_bytes=offloaded,
        offload_time=offload_time,
        onload_time=onload_time,
        forward_window=forward_window,
        sync_window=sync_window,
        host_bytes_required=offloaded,
    )

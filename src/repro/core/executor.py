"""The Fill Job Executor.

One executor runs per device.  Given the device's repeating bubble cycle it

1. evaluates the fill job under candidate execution configurations (batch
   size, CPU offloading, activation checkpointing), discarding those whose
   device footprint exceeds the bubbles' usable free memory,
2. runs the Fill Job Execution Plan Algorithm (Algorithm 1) for each
   surviving configuration and keeps the one with the highest effective
   throughput,
3. enforces the per-process memory cap so that a fill-job OOM can never
   affect the main job, and
4. exposes the throughput/recovered-FLOPs estimates the scheduler and the
   cluster simulator use to place jobs and advance time.

Fill jobs executing inside bubbles are slower than in exclusive execution
for three reasons the paper calls out (Section 6.2): scarce memory limits
the batch size / forces offloading, execution is interrupted at every
bubble end, and each bubble restarts with cold caches.  The first two come
out of the profile and the plan; the third is modelled by
:meth:`repro.models.efficiency.EfficiencyModel.bubble_efficiency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import PipeFillConfig
from repro.core.plan import (
    ExecutionPlan,
    GraphPartition,
    PackedPlan,
    PlanError,
    pack_fill_job,
    plan_fill_job,
)
from repro.hardware.device import DeviceSpec, V100_16GB
from repro.hardware.memory import DeviceOOMError, MemoryAllocator
from repro.models.base import ModelSpec
from repro.models.configs import ExecutionConfig, JobType, candidate_configs
from repro.models.efficiency import DEFAULT_EFFICIENCY, EfficiencyModel
from repro.models.profiles import ModelProfile, best_profile, profile_model
from repro.pipeline.bubbles import BubbleCycle
from repro.utils import plancache
from repro.utils.validation import check_positive

# -- shared estimate caches ----------------------------------------------------
#
# An estimate depends only on (bubble cycle, device, PipeFill config,
# efficiency model, model, job type) -- never on scheduler state -- so
# executors constructed with identical inputs (every device of a stage, every
# run over the same system) can share one memo instead of each re-running the
# profile + Algorithm-1 plan search.  Cycle, device and config are frozen
# dataclasses keyed by value.  The efficiency model holds dicts and the
# model spec would be expensive to hash on the estimate hot path, so both
# are keyed by identity: the efficiency id is resolved once per executor and
# pinned, and every cached entry stores the model spec it was computed for
# (the strong reference keeps that id from ever being reused, so two
# *different* specs -- even ones sharing a registry name -- can never
# collide, while the registry's one-canonical-spec-per-name behaviour still
# shares entries across runs).

#: One cached estimate: the model it was computed for plus the result.
_EstimateEntry = Tuple[ModelSpec, Optional["FillExecutionEstimate"]]

_PINNED_EFFICIENCY: Dict[int, EfficiencyModel] = {}
_SHARED_ESTIMATES: Dict[tuple, Dict[Tuple[int, JobType], "_EstimateEntry"]] = {}
_SHARED_ISOLATED: Dict[tuple, Dict[Tuple[int, JobType], Tuple[ModelSpec, float]]] = {}
_SHARED_PROFILES: Dict[tuple, Dict[tuple, ModelProfile]] = {}

#: Crude growth bounds: when this many distinct (cycle, device, config,
#: efficiency) namespaces accumulate (a long-lived process iterating many
#: systems in one process), the shared maps are flushed wholesale; and a
#: single namespace fed distinct spec objects (a non-memoizing model
#: resolver) is cleared once it holds this many entries.  Executors
#: constructed earlier keep their (now orphaned) namespace dicts and stay
#: correct; only future sharing restarts cold.
_MAX_SHARED_NAMESPACES = 128
_MAX_NAMESPACE_ENTRIES = 4096


def _efficiency_id(efficiency: EfficiencyModel) -> int:
    # repro: lint-ignore[hash-id] -- identity-memo key; the object is pinned
    # below so the id cannot be reused, and the key is never ordered,
    # serialized or digested.
    key = id(efficiency)
    _PINNED_EFFICIENCY.setdefault(key, efficiency)
    return key


def _flush_if_oversized() -> None:
    if len(_SHARED_ESTIMATES) > _MAX_SHARED_NAMESPACES:
        _SHARED_ESTIMATES.clear()
        _SHARED_ISOLATED.clear()
        _SHARED_PROFILES.clear()
        _PINNED_EFFICIENCY.clear()


def clear_shared_caches() -> None:
    """Drop all process-wide estimate/profile memos (benchmarks use this to
    measure cold-start plan-search cost; tests use it for isolation)."""
    from repro.models.registry import clear_model_cache

    _SHARED_ESTIMATES.clear()
    _SHARED_ISOLATED.clear()
    _SHARED_PROFILES.clear()
    _PINNED_EFFICIENCY.clear()
    clear_model_cache()


@dataclass(frozen=True)
class FillExecutionEstimate:
    """Predicted behaviour of one fill job on one device's bubble cycle.

    All "effective" quantities include the packing and warm-up losses of
    bubble execution; "isolated" quantities describe the same job running
    alone on an exclusive device.
    """

    model_name: str
    job_type: JobType
    profile: ModelProfile
    #: The execution plan behind the estimate: an eager ExecutionPlan in
    #: brute-force reference mode, a lazily-materialized PackedPlan on the
    #: cached fast path (same API, identical metrics).
    plan: "ExecutionPlan | PackedPlan"
    samples_per_cycle: float
    flops_per_cycle: float
    used_bubble_seconds_per_cycle: float
    cycle_period: float
    isolated_samples_per_second: float

    @property
    def effective_samples_per_second(self) -> float:
        """Fill-job throughput per wall-clock second (bubbles only)."""
        if self.cycle_period <= 0:
            return 0.0
        return self.samples_per_cycle / self.cycle_period

    @property
    def recovered_tflops(self) -> float:
        """TFLOP/s over the bubble durations used (Figure 7a's metric)."""
        if self.used_bubble_seconds_per_cycle <= 0:
            return 0.0
        return self.flops_per_cycle / self.used_bubble_seconds_per_cycle / 1e12

    @property
    def recovered_tflops_wallclock(self) -> float:
        """TFLOP/s averaged over wall-clock time (Figure 1/4c's metric)."""
        if self.cycle_period <= 0:
            return 0.0
        return self.flops_per_cycle / self.cycle_period / 1e12

    @property
    def relative_performance(self) -> float:
        """Throughput while filling relative to exclusive execution (Fig. 7b).

        This is the ``P`` in the paper's GPUs-saved estimate ``C * B * P``.
        """
        if self.isolated_samples_per_second <= 0 or self.used_bubble_seconds_per_cycle <= 0:
            return 0.0
        per_bubble_second = self.samples_per_cycle / self.used_bubble_seconds_per_cycle
        return per_bubble_second / self.isolated_samples_per_second

    @property
    def slowdown(self) -> float:
        """Exclusive-to-filled slowdown factor (>= 1)."""
        rel = self.relative_performance
        return float("inf") if rel == 0 else 1.0 / rel

    def processing_time(self, num_samples: float) -> float:
        """Wall-clock seconds to process ``num_samples`` on this device's bubbles."""
        check_positive(num_samples, "num_samples")
        if self.samples_per_cycle <= 0:
            return float("inf")
        cycles = num_samples / self.samples_per_cycle
        return cycles * self.cycle_period

    def flops_for_samples(self, num_samples: float) -> float:
        """FLOPs executed when processing ``num_samples``."""
        if self.samples_per_cycle <= 0:
            return 0.0
        return num_samples * (self.flops_per_cycle / self.samples_per_cycle)


class FillJobExecutor:
    """Per-device fill-job executor.

    Parameters
    ----------
    cycle:
        The device's repeating bubble cycle (from the instrumented engine,
        the analytic main-job model, or a synthetic cycle).
    device:
        The device spec (used for timing and memory capacities).
    config:
        PipeFill tunables.
    efficiency:
        Efficiency model shared with the profiler.
    """

    def __init__(
        self,
        cycle: BubbleCycle,
        *,
        device: DeviceSpec = V100_16GB,
        config: Optional[PipeFillConfig] = None,
        efficiency: EfficiencyModel = DEFAULT_EFFICIENCY,
    ) -> None:
        self.cycle = cycle
        self.device = device
        self.config = config or PipeFillConfig()
        self.efficiency = efficiency
        # Estimates are pure functions of the constructor inputs, so the
        # caches are shared process-wide between executors built with the
        # same (cycle, device, config, efficiency) -- see module docs above.
        _flush_if_oversized()
        eff_id = _efficiency_id(efficiency)
        estimate_key = (cycle, device, self.config, eff_id)
        device_key = (device, eff_id)
        self._estimate_cache: Dict[Tuple[int, JobType], _EstimateEntry] = (
            _SHARED_ESTIMATES.setdefault(estimate_key, {})
        )
        self._isolated_cache: Dict[Tuple[int, JobType], Tuple[ModelSpec, float]] = (
            _SHARED_ISOLATED.setdefault(device_key, {})
        )
        self._profile_cache: Dict[tuple, ModelProfile] = _SHARED_PROFILES.setdefault(
            device_key, {}
        )
        # Content hash of this executor's estimate namespace for the
        # persistent cross-process plan cache (computed lazily: hashing
        # the cycle is pointless when the disk cache is disabled).
        self._disk_namespace: Optional[str] = None

    def _disk_key(self, model: ModelSpec, job_type: JobType) -> tuple:
        if self._disk_namespace is None:
            self._disk_namespace = "-".join(
                (
                    plancache.content_key(self.cycle),
                    plancache.content_key(self.device),
                    plancache.content_key(self.config),
                    plancache.content_key(self.efficiency),
                )
            )
        return (self._disk_namespace, plancache.content_key(model), job_type.value)

    # -- memory ---------------------------------------------------------------

    @property
    def usable_memory_bytes(self) -> float:
        """Free memory (after the safety margin) available in the tightest bubble."""
        return self.config.usable_bubble_memory(self.cycle.min_free_memory_bytes)

    # -- estimation ------------------------------------------------------------

    def _isolated_throughput(self, model: ModelSpec, job_type: JobType) -> float:
        # repro: lint-ignore[hash-id] -- identity-memo cache key; the entry
        # pins the spec and the key is never ordered or serialized.
        key = (id(model), job_type)
        entry = self._isolated_cache.get(key)
        # The entry pins the spec it was computed for, so a hit can only
        # ever be the same object (an id cannot be reused while pinned).
        if entry is None or entry[0] is not model:
            profile = best_profile(
                model,
                job_type,
                memory_limit_bytes=self.device.usable_memory_bytes,
                device=self.device,
                efficiency_model=self.efficiency,
            )
            entry = (model, 0.0 if profile is None else profile.throughput_samples_per_s)
            if len(self._isolated_cache) >= _MAX_NAMESPACE_ENTRIES:
                self._isolated_cache.clear()
            self._isolated_cache[key] = entry
        return entry[1]

    def _profile(
        self,
        model: ModelSpec,
        job_type: JobType,
        exec_config: ExecutionConfig,
        *,
        use_cache: bool = True,
    ) -> ModelProfile:
        """Memoised :func:`profile_model` (profiles do not depend on the cycle)."""
        if not use_cache:
            return profile_model(model, job_type, exec_config, self.device, self.efficiency)
        key = (model, job_type, exec_config)
        profile = self._profile_cache.get(key)
        if profile is None:
            profile = profile_model(
                model, job_type, exec_config, self.device, self.efficiency
            )
            if len(self._profile_cache) >= _MAX_NAMESPACE_ENTRIES:
                self._profile_cache.clear()
            self._profile_cache[key] = profile
        return profile

    def _evaluate_config(
        self,
        model: ModelSpec,
        job_type: JobType,
        exec_config: ExecutionConfig,
        *,
        use_cache: bool = True,
    ) -> Optional[FillExecutionEstimate]:
        profile = self._profile(model, job_type, exec_config, use_cache=use_cache)
        if profile.device_footprint_bytes > self.usable_memory_bytes:
            return None
        try:
            if use_cache:
                # The vectorized Algorithm-1 fast path: identical plan, node
                # tuples materialized lazily.  The brute-force reference mode
                # keeps the scalar planner, so the differential oracles and
                # golden digests prove the two packers bit-identical.
                plan = pack_fill_job(profile.graph, self.cycle, self.config)
            else:
                plan = plan_fill_job(profile.graph, self.cycle, self.config)
        except PlanError:
            return None

        num_cycles = max(plan.num_cycles, 1)
        effective_work = 0.0
        used_bubble = 0.0
        bubble_durations = {i: b.duration for i, b in enumerate(plan.bubbles)}
        if isinstance(plan, PackedPlan):
            # Same accumulation order as the partition loop below, fed from
            # the packed per-visit durations instead of materialized nodes.
            for bubble_index, duration in plan.nonempty_visits():
                effective_work += duration * self.efficiency.bubble_efficiency(
                    duration
                )
                used_bubble += bubble_durations[bubble_index]
        else:
            for partition in plan.partitions:
                if partition.is_empty:
                    continue
                effective_work += partition.duration * self.efficiency.bubble_efficiency(
                    partition.duration
                )
                used_bubble += bubble_durations[partition.bubble_index]
        # Convert completed node-time back into samples and FLOPs via the
        # steady-state per-iteration totals.
        iterations_completed = effective_work / profile.graph.total_duration
        samples = iterations_completed * profile.config.batch_size
        flops = iterations_completed * profile.graph.total_flops
        return FillExecutionEstimate(
            model_name=model.name,
            job_type=job_type,
            profile=profile,
            plan=plan,
            samples_per_cycle=samples / num_cycles,
            flops_per_cycle=flops / num_cycles,
            used_bubble_seconds_per_cycle=used_bubble / num_cycles,
            cycle_period=self.cycle.period,
            isolated_samples_per_second=self._isolated_throughput(model, job_type),
        )

    def build_estimate(
        self,
        model: ModelSpec,
        job_type: JobType,
        *,
        configs: Optional[Sequence[ExecutionConfig]] = None,
        use_cache: bool = True,
    ) -> Optional[FillExecutionEstimate]:
        """Pick the best execution configuration for a fill job on this device.

        Returns ``None`` when no configuration fits the bubbles (the
        scheduler then places the job elsewhere or rejects it).
        """
        # repro: lint-ignore[hash-id] -- identity-memo cache key; the entry
        # pins the spec and the key is never ordered or serialized.
        key = (id(model), job_type)
        default_configs = configs is None
        if use_cache and default_configs:
            entry = self._estimate_cache.get(key)
            # Entries pin their spec, so a hit is always the same object.
            if entry is not None and entry[0] is model:
                return entry[1]
        disk_key = None
        if use_cache and default_configs and plancache.is_enabled():
            # The persistent cross-process cache: keyed by the same pure
            # inputs as the in-process memo, so a sweep worker or a second
            # bench run loads the plan search instead of re-running it.
            # Pickled estimates round-trip bit-identically, so a disk hit
            # can never change simulation results.
            disk_key = self._disk_key(model, job_type)
            hit, value = plancache.get(disk_key)
            if hit:
                if len(self._estimate_cache) >= _MAX_NAMESPACE_ENTRIES:
                    self._estimate_cache.clear()
                self._estimate_cache[key] = (model, value)
                return value
        if configs is None:
            configs = candidate_configs(job_type)
        best: Optional[FillExecutionEstimate] = None
        for exec_config in configs:
            estimate = self._evaluate_config(
                model, job_type, exec_config, use_cache=use_cache
            )
            if estimate is None:
                continue
            if (
                best is None
                or estimate.effective_samples_per_second
                > best.effective_samples_per_second
            ):
                best = estimate
        if use_cache and default_configs:
            if len(self._estimate_cache) >= _MAX_NAMESPACE_ENTRIES:
                self._estimate_cache.clear()
            self._estimate_cache[key] = (model, best)
            if disk_key is not None:
                plancache.put(disk_key, best)
        return best

    def processing_time(
        self, model: ModelSpec, job_type: JobType, num_samples: float
    ) -> float:
        """Wall-clock seconds to complete ``num_samples`` of the job here."""
        estimate = self.build_estimate(model, job_type)
        if estimate is None:
            return float("inf")
        return estimate.processing_time(num_samples)

    # -- memory capping / OOM isolation ----------------------------------------

    def execute_partition_on(
        self,
        allocator: MemoryAllocator,
        partition: GraphPartition,
        *,
        free_memory_bytes: Optional[float] = None,
        pool: str = "fill-job",
    ) -> bool:
        """Simulate executing one graph partition under a memory cap.

        Sets the fill-job pool's cap to the bubble's usable free memory
        (the ``set_per_process_memory_fraction`` mechanism), allocates the
        partition's working set, and releases it afterwards.  Returns
        ``True`` on success and ``False`` if the partition OOMed -- in which
        case the exception stays confined to the fill-job pool and the main
        job's allocations are untouched.
        """
        if free_memory_bytes is None:
            free_memory_bytes = self.cycle.min_free_memory_bytes
        cap = self.config.usable_bubble_memory(free_memory_bytes)
        allocator.set_memory_cap(pool, cap)
        try:
            # repro: lint-ignore[hash-id] -- transient allocation label,
            # freed before return and never part of any result payload.
            allocator.allocate(pool, f"partition-{id(partition)}", partition.memory_bytes)
        except DeviceOOMError as exc:
            if exc.pool != pool:  # pragma: no cover - defensive
                raise
            return False
        # repro: lint-ignore[hash-id] -- same transient label as the
        # allocate() probe above; never part of any result payload.
        allocator.free(pool, f"partition-{id(partition)}", release=False)
        return True
